// ServerConfig: the one configuration surface for standing up a disk
// server — offline simulation (csfc_sim, the experiment harness) and the
// real-time service front-end (csfc_serve) build from the same struct, so
// a service run and the offline replay that validates it cannot drift
// apart in configuration.
//
// It composes the per-layer configs that used to be assembled by hand at
// every call site:
//
//   scheduler + registry   which policy, and the knobs the name-based
//                          factory (sched/registry.h) draws from — one
//                          construction path for every policy, cascaded
//                          included (no more hand-built CascadedSfcScheduler
//                          at call sites).
//   sim                    SimulatorConfig: disk geometry, service model,
//                          metrics shape, trace sink.
//   ingest / admission     the service front-end's ring and load-shedding
//                          gates (src/svc).
//
// Build products:
//   MakeFactory(disk)   -> SchedulerFactory for offline runs/sweeps.
//   MakeServer(config)  -> ServiceHandle owning DiskModel + ServiceServer
//                          for service mode.
//
// Migration notes (one-PR deprecation window) in DESIGN.md section 12.

#ifndef CSFC_EXP_SERVER_CONFIG_H_
#define CSFC_EXP_SERVER_CONFIG_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "core/presets.h"
#include "disk/disk_model.h"
#include "sched/registry.h"
#include "sim/simulator.h"
#include "svc/server.h"

namespace csfc {

struct ServerConfig {
  /// Registry name of the policy ("csfc", "edf", "scan-rt", ...).
  std::string scheduler = "csfc";
  /// Knobs the registry draws from; `registry.disk` is ignored here (the
  /// build step injects the disk model it creates or is given).
  SchedulerRegistryContext registry;
  SimulatorConfig sim;
  svc::IngestConfig ingest;
  svc::AdmissionConfig admission;
  /// Service-mode pacing (svc::ServiceServer::Options::time_scale).
  double time_scale = 0.0;
  /// When true (default), MakeServer derives the admission oracle's
  /// fixed/sweep costs from the disk model instead of taking the numbers
  /// in `admission` at face value.
  bool derive_admission_costs = true;

  Status Validate() const;

  // Builder-style setters (each returns *this so call sites read as one
  // chained expression; plain field assignment works identically).
  ServerConfig& WithScheduler(std::string_view name) {
    scheduler = std::string(name);
    return *this;
  }
  ServerConfig& WithCascaded(CascadedConfig config) {
    registry.cascaded = std::move(config);
    return *this;
  }
  ServerConfig& WithQueueBackend(QueueBackend backend) {
    registry.cascaded = csfc::WithQueueBackend(registry.cascaded, backend);
    return *this;
  }
  ServerConfig& WithServiceModel(ServiceModel model) {
    sim.service_model = model;
    return *this;
  }
  ServerConfig& WithMetricsShape(uint32_t dims, uint32_t levels) {
    sim.metrics.dims = dims;
    sim.metrics.levels = levels;
    registry.priority_levels = levels;
    return *this;
  }
  ServerConfig& WithTraceSink(obs::EventSink* sink) {
    sim.trace_sink = sink;
    return *this;
  }
  ServerConfig& WithSlo(double wait_ms) {
    admission.slo_wait_ms = wait_ms;
    return *this;
  }
  ServerConfig& WithStreamRate(double rps, double burst = 0.0) {
    admission.stream_rate_rps = rps;
    admission.stream_burst = burst;
    return *this;
  }
  ServerConfig& WithIngest(size_t ring_capacity, size_t drain_batch) {
    ingest.ring_capacity = ring_capacity;
    ingest.drain_batch = drain_batch;
    return *this;
  }
  ServerConfig& WithTimeScale(double scale) {
    time_scale = scale;
    return *this;
  }

  /// Scheduler factory for offline runs. `disk` must outlive every
  /// scheduler the factory produces (disk-aware baselines keep the
  /// pointer).
  Result<SchedulerFactory> MakeFactory(const DiskModel& disk) const;
};

/// Wraps a DiskModel into the service layer's modeled-service-time
/// callback, mirroring the simulator's two service models (and its
/// seeded-vs-expected rotational latency choice). `disk` is borrowed and
/// must outlive the returned callable.
svc::ServiceTimeFn MakeServiceTimeFn(const DiskModel& disk,
                                     ServiceModel model,
                                     std::optional<uint64_t> latency_seed);

/// Everything a service run owns. Field order is the destruction
/// contract: the server (and the scheduler inside it) dies before the
/// disk model it references.
struct ServiceHandle {
  std::unique_ptr<DiskModel> disk;
  std::unique_ptr<svc::ServiceServer> server;
};

/// Builds the full service stack from one config: disk model, scheduler
/// via the registry, admission costs derived from the disk (unless
/// disabled), ServiceServer wired to `config.sim.trace_sink`.
Result<ServiceHandle> MakeServer(const ServerConfig& config);

}  // namespace csfc

#endif  // CSFC_EXP_SERVER_CONFIG_H_
