#include "exp/server_config.h"

#include <cmath>

namespace csfc {

Status ServerConfig::Validate() const {
  bool known = false;
  for (std::string_view n : AllSchedulerNames()) {
    if (n == scheduler) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument("server: unknown scheduler '" + scheduler +
                                   "' (csfc_sim --list prints the registry)");
  }
  if (Status s = sim.Validate(); !s.ok()) return s;
  if (Status s = ingest.Validate(); !s.ok()) return s;
  if (Status s = admission.Validate(); !s.ok()) return s;
  if (!std::isfinite(time_scale) || time_scale < 0.0) {
    return Status::InvalidArgument("server: time_scale must be finite, >= 0");
  }
  return Status::OK();
}

Result<SchedulerFactory> ServerConfig::MakeFactory(
    const DiskModel& disk) const {
  SchedulerRegistryContext ctx = registry;
  ctx.disk = &disk;
  return MakeSchedulerFactory(scheduler, ctx);
}

svc::ServiceTimeFn MakeServiceTimeFn(const DiskModel& disk,
                                     ServiceModel model,
                                     std::optional<uint64_t> latency_seed) {
  if (model == ServiceModel::kTransferOnly) {
    return [&disk](Cylinder, const Request& r) {
      return disk.TransferTimeMs(r.cylinder, r.bytes);
    };
  }
  if (latency_seed) {
    // Mutable capture: the sampling sequence advances per dispatch in
    // dispatch order — the same stream the simulator would draw.
    return [&disk, rng = Rng(*latency_seed)](Cylinder head,
                                             const Request& r) mutable {
      return disk.SeekTimeMs(head, r.cylinder) +
             disk.SampleRotationalLatencyMs(rng) +
             disk.TransferTimeMs(r.cylinder, r.bytes);
    };
  }
  return [&disk](Cylinder head, const Request& r) {
    return disk.SeekTimeMs(head, r.cylinder) +
           disk.AvgRotationalLatencyMs() +
           disk.TransferTimeMs(r.cylinder, r.bytes);
  };
}

Result<ServiceHandle> MakeServer(const ServerConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  Result<DiskModel> disk = DiskModel::Create(config.sim.disk);
  if (!disk.ok()) return disk.status();
  ServiceHandle handle;
  handle.disk = std::make_unique<DiskModel>(std::move(*disk));

  svc::ServiceServer::Options options;
  options.ingest = config.ingest;
  options.admission = config.admission;
  options.trace_sink = config.sim.trace_sink;
  options.time_scale = config.time_scale;
  if (config.derive_admission_costs) {
    // Calibrate the SCAN-tour oracle from the disk model: the seek-free
    // per-request cost at the average request (expected rotational
    // latency + the transfer of a mid-stroke default-size block) and the
    // full-stroke sweep one tour amortizes.
    const DiskParams& dp = config.sim.disk;
    const Cylinder mid = dp.cylinders / 2;
    const Request probe;  // default bytes
    double fixed = handle.disk->TransferTimeMs(mid, probe.bytes);
    if (config.sim.service_model == ServiceModel::kFullDisk) {
      fixed += handle.disk->AvgRotationalLatencyMs();
    }
    options.admission.fixed_cost_ms = fixed;
    options.admission.sweep_cost_ms =
        config.sim.service_model == ServiceModel::kFullDisk
            ? handle.disk->SeekTimeMs(0, dp.cylinders - 1)
            : 0.0;
  }

  Result<SchedulerFactory> factory = config.MakeFactory(*handle.disk);
  if (!factory.ok()) return factory.status();
  SchedulerPtr sched = (*factory)();
  Result<std::unique_ptr<svc::ServiceServer>> server =
      svc::ServiceServer::Create(
          std::move(sched),
          MakeServiceTimeFn(*handle.disk, config.sim.service_model,
                            config.sim.latency_seed),
          options);
  if (!server.ok()) return server.status();
  handle.server = std::move(*server);
  return handle;
}

}  // namespace csfc
