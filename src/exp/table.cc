#include "exp/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/export.h"

namespace csfc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) *out += "  ";
      *out += row[c];
      out->append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out->empty() && out->back() == ' ') out->pop_back();
    *out += '\n';
  };
  std::string out;
  emit_row(headers_, &out);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  Result<obs::FileWriter> out = obs::FileWriter::Open(path);
  if (!out.ok()) return out.status();
  if (Status s = obs::Export(*this, *out, obs::ExportFormat::kCsv); !s.ok()) {
    return s;
  }
  return out->Close();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace csfc
