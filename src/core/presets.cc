#include "core/presets.h"

namespace csfc {

namespace {
// Large enough that the deadline term dominates any priority separation in
// the stage-2 formula, emulating "f set to a very large value".
constexpr double kLargeF = 1e6;
}  // namespace

CascadedConfig PresetEdf(double deadline_horizon_ms) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = false;
  c.encapsulator.priority_dims = 0;
  c.encapsulator.stage2_mode = Stage2Mode::kFormula;
  c.encapsulator.f = kLargeF;
  c.encapsulator.stage2_tie = Stage2TieBreak::kNone;
  c.encapsulator.deadline_horizon_ms = deadline_horizon_ms;
  c.encapsulator.stage3_mode = Stage3Mode::kDisabled;
  c.dispatcher.discipline = QueueDiscipline::kFullyPreemptive;
  return c;
}

CascadedConfig PresetMultiQueue(uint32_t priority_bits,
                                double deadline_horizon_ms) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = false;  // single priority passes through
  c.encapsulator.priority_dims = 1;
  c.encapsulator.priority_bits = priority_bits;
  c.encapsulator.stage2_mode = Stage2Mode::kCurve;
  c.encapsulator.sfc2 = "cscan";
  c.encapsulator.stage2_deadline_major = false;  // priority on the major axis
  c.encapsulator.stage2_bits = std::max(priority_bits, 8u);
  c.encapsulator.deadline_horizon_ms = deadline_horizon_ms;
  c.encapsulator.stage3_mode = Stage3Mode::kDisabled;
  c.dispatcher.discipline = QueueDiscipline::kFullyPreemptive;
  return c;
}

CascadedConfig PresetCScan(uint32_t cylinders) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = false;
  c.encapsulator.priority_dims = 0;
  c.encapsulator.stage2_mode = Stage2Mode::kDisabled;
  c.encapsulator.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.encapsulator.partitions_r = 1;
  c.encapsulator.cylinders = cylinders;
  c.dispatcher.discipline = QueueDiscipline::kNonPreemptive;
  return c;
}

CascadedConfig PresetScanEdf(uint32_t cylinders, double deadline_horizon_ms) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = false;
  c.encapsulator.priority_dims = 0;
  c.encapsulator.stage2_mode = Stage2Mode::kFormula;
  c.encapsulator.f = kLargeF;
  c.encapsulator.stage2_tie = Stage2TieBreak::kNone;
  c.encapsulator.deadline_horizon_ms = deadline_horizon_ms;
  // Many partitions: deadline (via v2) picks the partition, the sweep
  // orders requests of similar urgency by cylinder.
  c.encapsulator.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.encapsulator.partitions_r = 64;
  c.encapsulator.stage3_bits = 12;
  c.encapsulator.cylinders = cylinders;
  c.dispatcher.discipline = QueueDiscipline::kFullyPreemptive;
  return c;
}

CascadedConfig PresetStage1Only(const std::string& curve, uint32_t dims,
                                uint32_t bits, double window,
                                bool serve_promote) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = true;
  c.encapsulator.sfc1 = curve;
  c.encapsulator.priority_dims = dims;
  c.encapsulator.priority_bits = bits;
  c.encapsulator.stage2_mode = Stage2Mode::kDisabled;
  c.encapsulator.stage3_mode = Stage3Mode::kDisabled;
  c.dispatcher.discipline = QueueDiscipline::kConditionallyPreemptive;
  c.dispatcher.window = window;
  c.dispatcher.serve_promote = serve_promote;
  return c;
}

CascadedConfig PresetStage12(const std::string& sfc1, uint32_t dims,
                             uint32_t bits, double f, double window,
                             double deadline_horizon_ms) {
  CascadedConfig c = PresetStage1Only(sfc1, dims, bits, window);
  c.encapsulator.stage2_mode = Stage2Mode::kFormula;
  c.encapsulator.f = f;
  c.encapsulator.stage2_tie = Stage2TieBreak::kEarliestDeadline;
  c.encapsulator.deadline_horizon_ms = deadline_horizon_ms;
  return c;
}

CascadedConfig PresetFull(const std::string& sfc1, uint32_t dims,
                          uint32_t bits, double f, uint32_t r,
                          uint32_t cylinders, double window,
                          double deadline_horizon_ms) {
  CascadedConfig c =
      PresetStage12(sfc1, dims, bits, f, window, deadline_horizon_ms);
  c.encapsulator.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.encapsulator.partitions_r = r;
  c.encapsulator.stage3_bits = 10;
  c.encapsulator.cylinders = cylinders;
  return c;
}

CascadedConfig PresetStage2Curve(const std::string& sfc2, bool deadline_major,
                                 uint32_t bits, double window,
                                 double deadline_horizon_ms) {
  CascadedConfig c;
  c.encapsulator.stage1_enabled = false;  // one priority type: direct entry
  c.encapsulator.priority_dims = 1;
  c.encapsulator.priority_bits = bits;
  c.encapsulator.stage2_mode = Stage2Mode::kCurve;
  c.encapsulator.sfc2 = sfc2;
  c.encapsulator.stage2_deadline_major = deadline_major;
  c.encapsulator.stage2_bits = std::max(bits, 8u);
  c.encapsulator.deadline_horizon_ms = deadline_horizon_ms;
  c.encapsulator.stage3_mode = Stage3Mode::kDisabled;
  c.dispatcher.discipline = QueueDiscipline::kConditionallyPreemptive;
  c.dispatcher.window = window;
  return c;
}

CascadedConfig WithQueueBackend(CascadedConfig config, QueueBackend backend) {
  config.dispatcher.queue_backend = backend;
  config.dispatcher.calendar_buckets = 0;  // derive from SFC3 parameters
  return config;
}

}  // namespace csfc
