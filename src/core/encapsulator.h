// Part 1 of the Cascaded-SFC scheduler: the encapsulator (Figure 2).
//
// A disk request with D priority dimensions, a deadline and a cylinder is
// a point in (D+2)-dimensional space. Three cascaded stages reduce it to a
// single characterization value v_c in [0, 1):
//
//   Stage 1 (SFC1): a D-dimensional space-filling curve over the priority
//     levels. Output: the request's normalized curve position. Purpose:
//     minimize priority inversion (Section 5.1).
//
//   Stage 2 (SFC2): combines the Stage-1 output with the request deadline.
//     Two modes:
//       * kFormula  - the paper's tunable blend v2 = (v1 + f*dl) / (1+f)
//         with a configurable tie-breaker; f < 1 favors priority, f > 1
//         favors deadline (Section 5.2).
//       * kCurve    - a generic 2-D SFC over the (priority, deadline) grid
//         with a configurable axis assignment; this realizes the
//         "Hilbert-as-SFC2" variants of Figure 9 and the -X / -Y
//         configurations of Figure 11.
//
//   Stage 3 (SFC3): combines the Stage-2 output with the forward C-SCAN
//     cylinder distance from the current head. Two modes:
//       * kPartitionedCScan - the paper's R-partition formula (Section
//         5.3): the priority-deadline axis is cut into R vertical
//         partitions of width P_s; each partition is served in one
//         cylinder sweep, ties on a cylinder broken by priority-deadline.
//         R = 1 degenerates to a pure C-SCAN; large R to pure priority.
//       * kCurve - a generic 2-D SFC over the (priority-deadline,
//         distance) grid.
//
// Any stage may be disabled (Section 4.1 flexibility): a disabled Stage 1
// passes dimension-0 priority through (or 0 when the request has no
// priorities); disabled Stages 2/3 forward their input unchanged.
//
// v_c is computed when a request is enqueued: the deadline axis uses
// time-to-deadline at that instant and the distance axis uses the head
// position at that instant, exactly as the paper inserts requests into the
// priority queue on arrival.

#ifndef CSFC_CORE_ENCAPSULATOR_H_
#define CSFC_CORE_ENCAPSULATOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/simd.h"
#include "common/status.h"
#include "core/cvalue.h"
#include "sched/scheduler.h"
#include "sfc/curve.h"
#include "workload/request.h"

namespace csfc {

/// Stage-2 operating mode.
enum class Stage2Mode { kDisabled, kFormula, kCurve };
/// Stage-3 operating mode.
enum class Stage3Mode { kDisabled, kPartitionedCScan, kCurve };
/// Tie-breaking for the Stage-2 formula (applied as an infinitesimal
/// secondary key).
enum class Stage2TieBreak { kNone, kEarliestDeadline, kHighestPriority };

/// Full encapsulator configuration.
struct EncapsulatorConfig {
  // --- Stage 1 ---
  bool stage1_enabled = true;
  std::string sfc1 = "hilbert";     ///< registry name of the D-dim curve
  uint32_t priority_dims = 3;       ///< D
  uint32_t priority_bits = 4;       ///< levels per dimension = 2^bits

  // --- Stage 2 ---
  Stage2Mode stage2_mode = Stage2Mode::kFormula;
  double f = 1.0;                   ///< formula balance factor (>= 0)
  Stage2TieBreak stage2_tie = Stage2TieBreak::kEarliestDeadline;
  std::string sfc2 = "diagonal";    ///< curve for kCurve mode
  uint32_t stage2_bits = 8;         ///< per-axis grid bits in kCurve mode
  bool stage2_deadline_major = false;  ///< kCurve: deadline on axis 0 (X)
  double deadline_horizon_ms = 1000.0; ///< deadline-axis scale

  // --- Stage 3 ---
  Stage3Mode stage3_mode = Stage3Mode::kPartitionedCScan;
  uint32_t partitions_r = 3;        ///< R, number of cylinder sweeps
  std::string sfc3 = "cscan";       ///< curve for kCurve mode
  uint32_t stage3_bits = 8;         ///< per-axis grid bits
  uint32_t cylinders = 3832;        ///< disk size for the distance axis

  // --- Hot path ---
  /// Precompute flat cell -> v lookup tables for the stage curves at
  /// Create(), turning per-request curve evaluation into quantize + one
  /// array load. Purely an optimization: characterization values are
  /// identical with or without it (asserted by tests); off exists for
  /// before/after microbenchmarks.
  bool enable_lut = true;
  /// Largest grid (in cells) a LUT is built for; larger grids fall back
  /// to direct curve evaluation. 2^20 cells = 8 MB of CValues.
  uint64_t lut_max_cells = uint64_t{1} << 20;
  /// Lane width of the fused batch kernel, resolved at Create() against
  /// the CPUID probe and the CSFC_SIMD process override (which wins; see
  /// simd::Resolve). Purely an optimization: CharacterizeBatch output is
  /// bit-identical at every level (property-tested); kAuto picks the best
  /// the machine has.
  simd::Mode simd = simd::Mode::kAuto;

  Status Validate() const;

  /// Short config signature, e.g. "hilbert|f=1|R=3".
  std::string Signature() const;
};

/// Per-stage intermediate values of one characterization: what each
/// cascaded stage contributed to the final v_c. Exposed for the
/// observability layer (characterize trace events) and tests; the hot
/// path uses Characterize, which skips materializing them.
struct StageValues {
  CValue v1 = 0.0;  ///< SFC1 output (priority curve position)
  CValue v2 = 0.0;  ///< SFC2 output (priority-deadline blend)
  CValue vc = 0.0;  ///< SFC3 output = the final characterization value
};

/// The encapsulator: maps requests to characterization values.
class Encapsulator {
 public:
  static Result<std::unique_ptr<Encapsulator>> Create(
      const EncapsulatorConfig& config);

  /// Computes v_c in [0, 1) for `r` given the disk state in `ctx`.
  CSFC_HOT CSFC_DETERMINISTIC
  CValue Characterize(const Request& r, const DispatchContext& ctx) const;

  /// Characterize, also returning each stage's intermediate value.
  /// StageValues.vc is identical to what Characterize returns on the same
  /// inputs.
  StageValues CharacterizeStages(const Request& r,
                                 const DispatchContext& ctx) const;

  /// Batch characterization under one shared context: out[i] receives the
  /// v_c of *reqs[i], bit-identical to Characterize(*reqs[i], ctx)
  /// (asserted by tests). This is the batch re-characterization hot path:
  /// every queue swap rekeys the whole forming batch, so the per-call
  /// invariants — stage-mode branches, LUT base pointers, quantization
  /// scales, the head-position and partition terms of SFC3 — are hoisted
  /// out of the loop once and each stage runs as a tight pass over the
  /// value array. Requires out.size() == reqs.size().
  CSFC_HOT CSFC_DETERMINISTIC
  void CharacterizeBatch(std::span<const Request* const> reqs,
                         const DispatchContext& ctx,
                         std::span<CValue> out) const;

  /// Batch sibling of CharacterizeStages (same hoisting; used by the
  /// tracing rekey path, which needs every stage's intermediate value).
  /// out[i].vc is identical to what CharacterizeBatch produces.
  void CharacterizeStagesBatch(std::span<const Request* const> reqs,
                               const DispatchContext& ctx,
                               std::span<StageValues> out) const;

  const EncapsulatorConfig& config() const { return config_; }

  /// True when stage N resolves through a precomputed lookup table
  /// (exposed for tests and the hot-path microbenchmark).
  bool stage1_uses_lut() const { return !lut1_.empty(); }
  bool stage2_uses_lut() const { return !lut2_.empty(); }
  bool stage3_uses_lut() const { return !lut3_.empty(); }

  /// Dispatch level the fused batch kernel resolved to at Create().
  simd::Level simd_level() const { return simd_level_; }
  /// Backend actually compiled into the dispatched kernel TU ("avx2",
  /// "sse2" or "scalar") — differs from LevelName(simd_level()) only when
  /// the toolchain couldn't target the ISA (exposed for the bench, which
  /// records honest per-arm numbers).
  const char* simd_backend() const;

 private:
  explicit Encapsulator(const EncapsulatorConfig& config);

  CSFC_HOT CValue Stage1(const Request& r) const;
  CSFC_HOT CValue Stage2(CValue v1, const Request& r,
                         const DispatchContext& ctx) const;
  CSFC_HOT CValue Stage3(CValue v2, const Request& r,
                         const DispatchContext& ctx) const;

  /// Batch stage passes: Stage1Batch fills v[i] from *reqs[i]; the later
  /// stages transform v in place (v[i] is that stage's input and output).
  /// Each hoists its mode/LUT/scale decisions out of the request loop.
  CSFC_HOT void Stage1Batch(std::span<const Request* const> reqs,
                            std::span<CValue> v) const;
  CSFC_HOT void Stage2Batch(std::span<const Request* const> reqs,
                            const DispatchContext& ctx,
                            std::span<CValue> v) const;
  CSFC_HOT void Stage3Batch(std::span<const Request* const> reqs,
                            const DispatchContext& ctx,
                            std::span<CValue> v) const;

  /// Single-pass kernel for the full-cascade common case (Stage 1 LUT or
  /// pass-through, Stage-2 formula, Stage-3 partitioned C-SCAN): each
  /// request's whole cascade runs back to back, so its fields and the
  /// carry value stay in registers instead of making three trips through
  /// the value array. Per-request operations are exactly the three stage
  /// bodies in order — stages never mix values across requests — so the
  /// result is bit-identical to the three-pass pipeline. Hoists the batch
  /// invariants (core/characterize_kernel.h) then dispatches on
  /// simd_level_: the AVX2/SSE2 vector kernels when eligible, otherwise a
  /// scalar loop over FusedScalarOne.
  template <bool kLut1>
  CSFC_HOT void FusedFormulaPartitionedBatch(
      std::span<const Request* const> reqs, const DispatchContext& ctx,
      std::span<CValue> v) const;

  /// Builds the normalized cell -> v tables for every active curve whose
  /// grid has at most `max_cells` cells.
  void BuildLuts(uint64_t max_cells);

  EncapsulatorConfig config_;
  simd::Level simd_level_ = simd::Level::kScalar;  // resolved at Create()
  CurvePtr curve1_;  // null when stage 1 is disabled or D == 0
  CurvePtr curve2_;  // null unless stage2_mode == kCurve
  CurvePtr curve3_;  // null unless stage3_mode == kCurve
  // Flat cell -> normalized curve value tables (empty = evaluate the
  // curve directly). Cell numbering is SpaceFillingCurve::CellOf: row
  // major, dimension 0 most significant.
  std::vector<CValue> lut1_;
  std::vector<CValue> lut2_;
  std::vector<CValue> lut3_;
};

}  // namespace csfc

#endif  // CSFC_CORE_ENCAPSULATOR_H_
