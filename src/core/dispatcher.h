// Part 2 of the Cascaded-SFC scheduler: the dispatcher (Section 3).
//
// Requests enter keyed by their characterization value v_c (lower value =
// higher priority) and leave in one of three queue disciplines:
//
//  * Non-preemptive: two queues. The active queue q is served to
//    exhaustion while arrivals collect in the waiting queue q'; when q
//    empties, the queues swap. Starvation-free but suffers priority
//    inversion (new urgent requests wait a whole batch).
//
//  * Fully-preemptive: a single queue; every arrival competes immediately.
//    Perfect priority order, but a stream of urgent arrivals starves
//    everything else.
//
//  * Conditionally-preemptive (the paper's contribution): an arrival
//    preempts the current batch only if it beats the *currently served*
//    request T_cur by more than the blocking window w: v_new < v_cur - w
//    (Figure 3). Arrivals inside the window wait in q'. w = 0 degenerates
//    to fully-preemptive; w >= 1 (the whole space) to non-preemptive.
//
// Two policies refine the conditional discipline:
//
//  * SP (Serve-and-Promote, Section 3.2): before each dispatch, requests
//    in q' that now beat the next-to-be-served request by more than w are
//    promoted into q — bounding the priority inversion caused by blocked
//    windows.
//
//  * ER (Expand-and-Reset, Section 3.3): every preemption multiplies w by
//    the expansion factor e, so a sustained burst of urgent arrivals
//    drives the scheduler toward non-preemptive (starvation-free)
//    operation; w resets to its configured value when the active batch is
//    exhausted (queue swap). The scheduler thus oscillates between
//    conditional and non-preemptive modes.
//
// Both queues are flat 4-ary heaps of (key, slot) entries
// (core/flat_queue.h) over a shared request slot pool, rather than
// node-allocating maps; (v_c, seq) FIFO ordering is bit-identical to the
// map formulation, which survives as ReferenceDispatcher below for the
// debug-build cross-check, the equivalence tests, and the before/after
// microbenchmark.

#ifndef CSFC_CORE_DISPATCHER_H_
#define CSFC_CORE_DISPATCHER_H_

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/function_ref.h"
#include "common/status.h"
#include "core/cvalue.h"
#include "core/flat_queue.h"
#include "obs/tracer.h"
#include "workload/request.h"

namespace csfc {

/// Per-request re-characterization hook: new v_c for one waiting request.
/// A FunctionRef, not a std::function: rekey hooks are invoked once per
/// waiting request on every queue swap, and the owning scheduler's lambda
/// lives on the caller's stack for the duration of the call.
using RekeyFn = FunctionRef<CValue(const Request&)>;

/// Batch re-characterization hook: called exactly once per rekey with all
/// waiting requests; must fill out[i] with the new v_c of *reqs[i]
/// (out.size() == reqs.size()). This is the swap-time hot path — the one
/// call lets the encapsulator hoist its per-batch invariants.
using BatchRekeyFn =
    FunctionRef<void(std::span<const Request* const>, std::span<CValue>)>;

/// Pending-request visitor (metric walks, equivalence checks).
using RequestVisitor = FunctionRef<void(const Request&)>;

/// Queue discipline of the dispatcher.
enum class QueueDiscipline {
  kNonPreemptive,
  kFullyPreemptive,
  kConditionallyPreemptive,
};

/// Standalone-dispatcher default for DispatcherConfig::calendar_buckets
/// == 0. ~1K ranges keeps the calendar's metadata arrays L1-resident
/// while holding per-bucket occupancy to a few entries even at depth
/// 10^4; measurably better at every depth than finer slicings whose
/// metadata spills to L2. The cascaded scheduler derives its figure from
/// its own SFC3 partition parameters instead, targeting the same total
/// (core/cascaded_scheduler.cc).
inline constexpr uint32_t kDefaultCalendarBuckets = 1024;

/// Dispatcher configuration.
struct DispatcherConfig {
  QueueDiscipline discipline = QueueDiscipline::kConditionallyPreemptive;
  /// Blocking window w as a fraction of the characterization space [0, 1].
  double window = 0.05;
  /// SP policy (conditional discipline only).
  bool serve_promote = true;
  /// ER policy (conditional discipline only).
  bool expand_reset = false;
  /// ER expansion factor e (> 1).
  double expansion_factor = 2.0;
  /// Queue backend for q / q'. kFlat is the monolithic heap; kCalendar
  /// buckets v_c into sweep ranges (see BucketedSlotHeap) and is the
  /// depth-scalable default (flat stays selectable for the shallow-queue
  /// regime and the backend ablations). Observable scheduling behavior is
  /// identical either way.
  QueueBackend queue_backend = QueueBackend::kCalendar;
  /// Calendar bucket count (kCalendar only). 0 = derive: the cascaded
  /// scheduler slices its R SFC3 sweep partitions at up-to-cylinder
  /// granularity, targeting ~kDefaultCalendarBuckets ranges in total; a
  /// standalone dispatcher uses kDefaultCalendarBuckets directly. Capped
  /// at BucketedSlotHeap::kMaxBuckets.
  uint32_t calendar_buckets = 0;

  Status Validate() const;
};

/// Reference dispatcher: the original std::map-backed implementation,
/// kept verbatim as the semantic oracle for the flat-queue Dispatcher. It
/// backs the debug-build cross-check, the randomized equivalence test, and
/// the map-vs-flat microbenchmark; it is not used on the simulation hot
/// path.
class ReferenceDispatcher {
 public:
  explicit ReferenceDispatcher(const DispatcherConfig& config);

  void Insert(CValue v, const Request& r);
  std::optional<Request> Pop();
  void RekeyWaiting(RekeyFn key);
  /// One-call batch rekey; observable behavior identical to RekeyWaiting
  /// with the equivalent per-request hook.
  void RekeyWaitingBatch(BatchRekeyFn key);
  void ForEach(RequestVisitor fn) const;

  size_t size() const { return active_.size() + waiting_.size(); }
  bool empty() const { return size() == 0; }
  bool NeedsSwapForPop() const { return active_.empty() && !waiting_.empty(); }
  double current_window() const { return window_; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t swaps() const { return swaps_; }

 private:
  // Key: (v_c, insertion sequence) so exact ties dispatch FIFO.
  using Queue = std::map<std::pair<CValue, uint64_t>, Request>;

  void Swap();

  DispatcherConfig config_;
  double window_;
  std::optional<CValue> current_;
  Queue active_;   // q
  Queue waiting_;  // q'
  uint64_t seq_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t promotions_ = 0;
  uint64_t swaps_ = 0;
};

/// Priority-queue machinery shared by the three disciplines.
class Dispatcher {
 public:
  static Result<Dispatcher> Create(const DispatcherConfig& config);

#ifndef NDEBUG
  // The debug-only shadow_ member would otherwise delete copying; deep-copy
  // it so Dispatcher is copyable and movable in every build mode.
  Dispatcher(const Dispatcher& other);
  Dispatcher& operator=(const Dispatcher& other);
  Dispatcher(Dispatcher&&) = default;
  Dispatcher& operator=(Dispatcher&&) = default;
#endif

  /// Inserts a request with characterization value `v`. The push_back-style
  /// overload pair keeps both call shapes single-transfer: lvalue callers
  /// copy straight into the slot pool, movers (the simulator's arrival
  /// handoff) move straight in — neither pays an intermediate Request.
  CSFC_HOT void Insert(CValue v, const Request& r);
  CSFC_HOT void Insert(CValue v, Request&& r);

  /// Removes and returns the next request to serve (nullopt when empty).
  /// The payload is moved out of the slot pool, never copied.
  CSFC_HOT std::optional<Request> Pop();

  size_t size() const { return active_.size() + waiting_.size(); }
  bool empty() const { return size() == 0; }

  /// True when the next Pop() will swap the queues (the active batch is
  /// exhausted and a new one is about to form from q').
  bool NeedsSwapForPop() const { return active_.empty() && !waiting_.empty(); }

  /// Recomputes the characterization value of every waiting (q') request
  /// with `key`. Used by the Cascaded-SFC scheduler to re-characterize a
  /// forming batch against the *current* head position and time, so the
  /// SFC3 cylinder sweep of each batch is coherent (and deadline urgency
  /// is current) instead of frozen at the various enqueue instants.
  CSFC_HOT void RekeyWaiting(RekeyFn key);

  /// Batch form of RekeyWaiting: gathers every waiting request, invokes
  /// `key` exactly once for the whole set, and restores the heap with the
  /// same single O(n) Floyd pass. Semantically identical to RekeyWaiting
  /// with the equivalent per-request hook; exists so swap-time
  /// re-characterization goes through Encapsulator::CharacterizeBatch
  /// instead of one full characterization dispatch per request.
  CSFC_HOT void RekeyWaitingBatch(BatchRekeyFn key);

  /// Visits all pending requests (active then waiting, each in ascending
  /// (v_c, seq) order).
  void ForEach(RequestVisitor fn) const;

  /// Current blocking window (grows under ER).
  double current_window() const { return window_; }
  /// Total preemptions performed (conditional discipline).
  uint64_t preemptions() const { return preemptions_; }
  /// Total SP promotions performed.
  uint64_t promotions() const { return promotions_; }
  /// Total queue swaps.
  uint64_t swaps() const { return swaps_; }

  /// Attaches the tracer preempt / SP-promote / queue-swap / ER-reset
  /// events are emitted through (null or disabled = no tracing; the only
  /// residual cost is one branch per queue op). Event timestamps come
  /// from Tracer::now(), which the owning scheduler stamps from the
  /// DispatchContext before delegating.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const DispatcherConfig& config() const { return config_; }

 private:
  /// "No request served yet" sentinel for current_ / preempt_bound_:
  /// NaN compares false against every arrival.
  static constexpr CValue kNoCurrent =
      std::numeric_limits<double>::quiet_NaN();

  explicit Dispatcher(const DispatcherConfig& config);

  CSFC_HOT void Swap();
  /// Shared body of the Insert overloads; R is Request& or Request&&.
  template <typename R>
  CSFC_HOT void InsertImpl(CValue v, R&& r);
  /// Parks `r` in the slot pool and returns its slot index. Pop frees
  /// slots inline (payloads move straight from the pool into the returned
  /// optional, so there is no take-side counterpart).
  template <typename R>
  CSFC_HOT uint32_t AllocSlot(R&& r);
  /// Debug-build cross-check: mirrors the op on shadow_ and asserts the
  /// two implementations agree (no-op in release builds).
  void CheckShadow() const;

  DispatcherConfig config_;
  double window_;
  /// v_c of the most recently dispatched request — the paper's T_cur, the
  /// request the disk is serving. Arrival comparisons use this, not the
  /// queue head (Figure 3 vs. Figure 4 narrative). It persists after the
  /// service completes; a stale value is harmless because the queues are
  /// then empty and every path drains the newcomer immediately. NaN
  /// until the first dispatch: every comparison against it is false,
  /// which is exactly the "nothing served yet, no preemption" rule.
  CValue current_ = kNoCurrent;
  /// current_ - window_, maintained wherever either changes: the
  /// conditional-preemption test in Insert is then one compare, with the
  /// NaN start meaning "never preempt" for free.
  CValue preempt_bound_ = kNoCurrent;
  /// Pop runs the SP scan (conditional discipline with serve_promote);
  /// folded to one flag at construction for the per-pop gate.
  bool sp_scan_ = false;
  DispatchQueue active_;   // q
  DispatchQueue waiting_;  // q'
  /// Request payloads, indexed by the slot in each heap entry. Heaps only
  /// ever shuffle 24-byte (key, slot) entries; payloads stay put between
  /// Insert and Pop, including across SP promotions and queue swaps.
  std::vector<Request> pool_;
  std::vector<uint32_t> free_;
  /// Scratch for RekeyWaitingBatch (gathered payload pointers + new keys),
  /// reused across swaps so batch rekey settles to zero allocations.
  std::vector<const Request*> rekey_reqs_;
  std::vector<CValue> rekey_vals_;
  uint64_t seq_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t promotions_ = 0;
  uint64_t swaps_ = 0;
  /// Borrowed observability tracer (see set_tracer). Deliberately not
  /// copied by the debug-build copy constructor's shadow logic: the copy
  /// shares the same tracer handle.
  obs::Tracer* tracer_ = nullptr;
#ifndef NDEBUG
  std::unique_ptr<ReferenceDispatcher> shadow_;
#endif
};

}  // namespace csfc

#endif  // CSFC_CORE_DISPATCHER_H_
