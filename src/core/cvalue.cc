#include "core/cvalue.h"

#include <algorithm>

#include "workload/request.h"

namespace csfc {

uint32_t QuantizeUnit(double v, uint32_t cells) {
  if (v <= 0.0) return 0;
  if (v >= 1.0) return cells - 1;
  const uint32_t cell = static_cast<uint32_t>(v * cells);
  return std::min(cell, cells - 1);
}

uint32_t QuantizeDeadline(SimTime deadline, SimTime now, SimTime horizon,
                          uint32_t cells) {
  if (deadline == kNoDeadline) return cells - 1;
  if (deadline <= now) return 0;
  const SimTime remaining = deadline - now;
  if (remaining >= horizon) return cells - 1;
  return QuantizeUnit(static_cast<double>(remaining) /
                          static_cast<double>(horizon),
                      cells);
}

uint32_t CScanDistance(Cylinder cyl, Cylinder head, uint32_t cylinders) {
  if (cyl >= head) return cyl - head;
  return cyl + cylinders - head;
}

}  // namespace csfc
