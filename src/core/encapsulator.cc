#include "core/encapsulator.h"

#include <algorithm>
#include <cmath>

#include "sfc/registry.h"

namespace csfc {

namespace {
// Weight of the Stage-2 tie-breaking secondary key. Small enough that it
// can never reorder requests whose primary keys differ by one grid cell
// (the smallest primary separation is ~2^-16 at the maximum stage-2 grid).
constexpr double kTieEpsilon = 0x1.0p-24;
}  // namespace

Status EncapsulatorConfig::Validate() const {
  if (stage1_enabled && priority_dims > 0) {
    GridSpec spec{.dims = priority_dims, .bits = priority_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc1)) {
      return Status::NotFound("unknown SFC1 curve: " + sfc1);
    }
  }
  if (stage2_mode == Stage2Mode::kFormula && f < 0.0) {
    return Status::InvalidArgument("stage-2 balance factor f must be >= 0");
  }
  if (stage2_mode == Stage2Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = stage2_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc2)) {
      return Status::NotFound("unknown SFC2 curve: " + sfc2);
    }
  }
  if (stage2_mode != Stage2Mode::kDisabled && deadline_horizon_ms <= 0.0) {
    return Status::InvalidArgument("deadline_horizon_ms must be > 0");
  }
  if (stage3_mode == Stage3Mode::kPartitionedCScan && partitions_r == 0) {
    return Status::InvalidArgument("partitions_r (R) must be >= 1");
  }
  if (stage3_mode == Stage3Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = stage3_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc3)) {
      return Status::NotFound("unknown SFC3 curve: " + sfc3);
    }
  }
  if (stage3_mode != Stage3Mode::kDisabled && cylinders < 2) {
    return Status::InvalidArgument("cylinders must be >= 2");
  }
  if (stage3_mode == Stage3Mode::kPartitionedCScan && stage3_bits < 1) {
    return Status::InvalidArgument("stage3_bits must be >= 1");
  }
  return Status::OK();
}

std::string EncapsulatorConfig::Signature() const {
  std::string sig;
  sig += stage1_enabled && priority_dims > 0 ? sfc1 : "off";
  sig += '|';
  switch (stage2_mode) {
    case Stage2Mode::kDisabled:
      sig += "off";
      break;
    case Stage2Mode::kFormula:
      sig += "f=";
      sig += std::to_string(f);
      break;
    case Stage2Mode::kCurve:
      sig += sfc2;
      sig += stage2_deadline_major ? "(dl-major)" : "(pri-major)";
      break;
  }
  sig += '|';
  switch (stage3_mode) {
    case Stage3Mode::kDisabled:
      sig += "off";
      break;
    case Stage3Mode::kPartitionedCScan:
      sig += "R=";
      sig += std::to_string(partitions_r);
      break;
    case Stage3Mode::kCurve:
      sig += sfc3;
      break;
  }
  return sig;
}

Result<std::unique_ptr<Encapsulator>> Encapsulator::Create(
    const EncapsulatorConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  std::unique_ptr<Encapsulator> e(new Encapsulator(config));
  if (config.stage1_enabled && config.priority_dims > 0) {
    GridSpec spec{.dims = config.priority_dims, .bits = config.priority_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc1, spec);
    if (!c.ok()) return c.status();
    e->curve1_ = std::move(*c);
  }
  if (config.stage2_mode == Stage2Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = config.stage2_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc2, spec);
    if (!c.ok()) return c.status();
    e->curve2_ = std::move(*c);
  }
  if (config.stage3_mode == Stage3Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = config.stage3_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc3, spec);
    if (!c.ok()) return c.status();
    e->curve3_ = std::move(*c);
  }
  if (config.enable_lut) e->BuildLuts(config.lut_max_cells);
  return e;
}

void Encapsulator::BuildLuts(uint64_t max_cells) {
  const auto build = [max_cells](const CurvePtr& curve,
                                 std::vector<CValue>& lut) {
    if (curve == nullptr || curve->num_cells() > max_cells) return;
    const std::vector<uint64_t> table = curve->BuildIndexTable();
    lut.resize(table.size());
    for (size_t cell = 0; cell < table.size(); ++cell) {
      lut[cell] = NormalizeIndex(table[cell], table.size());
    }
  };
  build(curve1_, lut1_);
  build(curve2_, lut2_);
  build(curve3_, lut3_);
}

Encapsulator::Encapsulator(const EncapsulatorConfig& config)
    : config_(config) {}

CValue Encapsulator::Characterize(const Request& r,
                                  const DispatchContext& ctx) const {
  const CValue v1 = Stage1(r);
  const CValue v2 = Stage2(v1, r, ctx);
  return Stage3(v2, r, ctx);
}

StageValues Encapsulator::CharacterizeStages(const Request& r,
                                             const DispatchContext& ctx) const {
  StageValues sv;
  sv.v1 = Stage1(r);
  sv.v2 = Stage2(sv.v1, r, ctx);
  sv.vc = Stage3(sv.v2, r, ctx);
  return sv;
}

CValue Encapsulator::Stage1(const Request& r) const {
  if (curve1_ == nullptr) {
    // Pass-through: single-priority (or no-priority) applications skip
    // SFC1 (Section 4.1).
    if (r.priorities.empty()) return 0.0;
    const uint32_t levels = uint32_t{1} << config_.priority_bits;
    const PriorityLevel p = std::min(r.priorities[0], levels - 1);
    return static_cast<double>(p) / static_cast<double>(levels);
  }
  const uint32_t levels = uint32_t{1} << config_.priority_bits;
  if (!lut1_.empty()) {
    // Hot path: pack the quantized priorities into the row-major cell
    // number (CellOf layout) and load the precomputed value.
    uint64_t cell = 0;
    for (uint32_t k = 0; k < config_.priority_dims; ++k) {
      cell = (cell << config_.priority_bits) |
             std::min<uint32_t>(r.priority(k), levels - 1);
    }
    return lut1_[cell];
  }
  uint32_t point[16];
  for (uint32_t k = 0; k < config_.priority_dims; ++k) {
    point[k] = std::min<uint32_t>(r.priority(k), levels - 1);
  }
  const uint64_t index = curve1_->Index(
      std::span<const uint32_t>(point, config_.priority_dims));
  return NormalizeIndex(index, curve1_->num_cells());
}

CValue Encapsulator::Stage2(CValue v1, const Request& r,
                            const DispatchContext& ctx) const {
  if (config_.stage2_mode == Stage2Mode::kDisabled) return v1;
  const SimTime horizon = MsToSim(config_.deadline_horizon_ms);

  if (config_.stage2_mode == Stage2Mode::kFormula) {
    // Continuous deadline axis in [0, 1]: time-to-deadline over horizon.
    double dl;
    if (!r.has_deadline()) {
      dl = 1.0;
    } else if (r.deadline <= ctx.now) {
      dl = 0.0;
    } else {
      dl = std::min(1.0, static_cast<double>(r.deadline - ctx.now) /
                             static_cast<double>(horizon));
    }
    double v = (v1 + config_.f * dl) / (1.0 + config_.f);
    switch (config_.stage2_tie) {
      case Stage2TieBreak::kNone:
        break;
      case Stage2TieBreak::kEarliestDeadline:
        v += kTieEpsilon * dl;
        break;
      case Stage2TieBreak::kHighestPriority:
        v += kTieEpsilon * v1;
        break;
    }
    return std::min(v, std::nextafter(1.0, 0.0));
  }

  // kCurve: quantize both axes onto the stage grid and walk the 2-D curve.
  const uint32_t cells = uint32_t{1} << config_.stage2_bits;
  const uint32_t pri_cell = QuantizeUnit(v1, cells);
  const uint32_t dl_cell =
      QuantizeDeadline(r.deadline, ctx.now, horizon, cells);
  uint32_t point[2];
  if (config_.stage2_deadline_major) {
    point[0] = dl_cell;
    point[1] = pri_cell;
  } else {
    point[0] = pri_cell;
    point[1] = dl_cell;
  }
  if (!lut2_.empty()) {
    return lut2_[(uint64_t{point[0]} << config_.stage2_bits) | point[1]];
  }
  const uint64_t index = curve2_->Index(std::span<const uint32_t>(point, 2));
  return NormalizeIndex(index, curve2_->num_cells());
}

CValue Encapsulator::Stage3(CValue v2, const Request& r,
                            const DispatchContext& ctx) const {
  if (config_.stage3_mode == Stage3Mode::kDisabled) return v2;
  const uint32_t y_v = CScanDistance(r.cylinder, ctx.head, config_.cylinders);

  if (config_.stage3_mode == Stage3Mode::kPartitionedCScan) {
    // Section 5.3: cut the priority-deadline axis into R partitions of
    // width P_s; serve partition by partition, each in one cylinder sweep,
    // ties on a cylinder broken by the priority-deadline value.
    const uint32_t max_x = uint32_t{1} << config_.stage3_bits;
    const uint32_t x_v = QuantizeUnit(v2, max_x);
    const uint32_t r_parts = config_.partitions_r;
    const uint32_t p_s = (max_x + r_parts - 1) / r_parts;  // partition width
    const uint32_t p_n = x_v / p_s;                        // partition index
    const uint64_t max_y = config_.cylinders;
    const uint64_t raw =
        (static_cast<uint64_t>(p_n) * max_y + y_v) * p_s + (x_v % p_s);
    const uint64_t raw_max = static_cast<uint64_t>(r_parts) * max_y * p_s;
    return static_cast<double>(raw) / static_cast<double>(raw_max);
  }

  // kCurve: 2-D curve over (priority-deadline, distance).
  const uint32_t cells = uint32_t{1} << config_.stage3_bits;
  uint32_t point[2];
  point[0] = QuantizeUnit(v2, cells);
  point[1] = QuantizeUnit(
      static_cast<double>(y_v) / static_cast<double>(config_.cylinders), cells);
  if (!lut3_.empty()) {
    return lut3_[(uint64_t{point[0]} << config_.stage3_bits) | point[1]];
  }
  const uint64_t index = curve3_->Index(std::span<const uint32_t>(point, 2));
  return NormalizeIndex(index, curve3_->num_cells());
}

}  // namespace csfc
