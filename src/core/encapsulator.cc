#include "core/encapsulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/characterize_kernel.h"
#include "sfc/registry.h"

namespace csfc {

Status EncapsulatorConfig::Validate() const {
  if (stage1_enabled && priority_dims > 0) {
    GridSpec spec{.dims = priority_dims, .bits = priority_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc1)) {
      return Status::NotFound("unknown SFC1 curve: " + sfc1);
    }
  }
  if (stage2_mode == Stage2Mode::kFormula && f < 0.0) {
    return Status::InvalidArgument("stage-2 balance factor f must be >= 0");
  }
  if (stage2_mode == Stage2Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = stage2_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc2)) {
      return Status::NotFound("unknown SFC2 curve: " + sfc2);
    }
  }
  if (stage2_mode != Stage2Mode::kDisabled && deadline_horizon_ms <= 0.0) {
    return Status::InvalidArgument("deadline_horizon_ms must be > 0");
  }
  if (stage3_mode == Stage3Mode::kPartitionedCScan && partitions_r == 0) {
    return Status::InvalidArgument("partitions_r (R) must be >= 1");
  }
  if (stage3_mode == Stage3Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = stage3_bits};
    if (Status s = spec.Validate(); !s.ok()) return s;
    if (!IsKnownCurve(sfc3)) {
      return Status::NotFound("unknown SFC3 curve: " + sfc3);
    }
  }
  if (stage3_mode != Stage3Mode::kDisabled && cylinders < 2) {
    return Status::InvalidArgument("cylinders must be >= 2");
  }
  if (stage3_mode == Stage3Mode::kPartitionedCScan && stage3_bits < 1) {
    return Status::InvalidArgument("stage3_bits must be >= 1");
  }
  return Status::OK();
}

std::string EncapsulatorConfig::Signature() const {
  std::string sig;
  sig += stage1_enabled && priority_dims > 0 ? sfc1 : "off";
  sig += '|';
  switch (stage2_mode) {
    case Stage2Mode::kDisabled:
      sig += "off";
      break;
    case Stage2Mode::kFormula:
      sig += "f=";
      sig += std::to_string(f);
      break;
    case Stage2Mode::kCurve:
      sig += sfc2;
      sig += stage2_deadline_major ? "(dl-major)" : "(pri-major)";
      break;
  }
  sig += '|';
  switch (stage3_mode) {
    case Stage3Mode::kDisabled:
      sig += "off";
      break;
    case Stage3Mode::kPartitionedCScan:
      sig += "R=";
      sig += std::to_string(partitions_r);
      break;
    case Stage3Mode::kCurve:
      sig += sfc3;
      break;
  }
  return sig;
}

Result<std::unique_ptr<Encapsulator>> Encapsulator::Create(
    const EncapsulatorConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  std::unique_ptr<Encapsulator> e(new Encapsulator(config));
  if (config.stage1_enabled && config.priority_dims > 0) {
    GridSpec spec{.dims = config.priority_dims, .bits = config.priority_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc1, spec);
    if (!c.ok()) return c.status();
    e->curve1_ = std::move(*c);
  }
  if (config.stage2_mode == Stage2Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = config.stage2_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc2, spec);
    if (!c.ok()) return c.status();
    e->curve2_ = std::move(*c);
  }
  if (config.stage3_mode == Stage3Mode::kCurve) {
    GridSpec spec{.dims = 2, .bits = config.stage3_bits};
    Result<CurvePtr> c = MakeCurve(config.sfc3, spec);
    if (!c.ok()) return c.status();
    e->curve3_ = std::move(*c);
  }
  if (config.enable_lut) e->BuildLuts(config.lut_max_cells);
  e->simd_level_ = simd::Resolve(config.simd);
  return e;
}

const char* Encapsulator::simd_backend() const {
  switch (simd_level_) {
    case simd::Level::kAvx2:
      return CharacterizeFusedAvx2Backend();
    case simd::Level::kSse2:
      return CharacterizeFusedSse2Backend();
    case simd::Level::kScalar:
      break;
  }
  return "scalar";
}

void Encapsulator::BuildLuts(uint64_t max_cells) {
  const auto build = [max_cells](const CurvePtr& curve,
                                 std::vector<CValue>& lut) {
    if (curve == nullptr || curve->num_cells() > max_cells) return;
    const std::vector<uint64_t> table = curve->BuildIndexTable();
    lut.resize(table.size());
    for (size_t cell = 0; cell < table.size(); ++cell) {
      lut[cell] = NormalizeIndex(table[cell], table.size());
    }
  };
  build(curve1_, lut1_);
  build(curve2_, lut2_);
  build(curve3_, lut3_);
}

Encapsulator::Encapsulator(const EncapsulatorConfig& config)
    : config_(config) {}

CValue Encapsulator::Characterize(const Request& r,
                                  const DispatchContext& ctx) const {
  const CValue v1 = Stage1(r);
  const CValue v2 = Stage2(v1, r, ctx);
  return Stage3(v2, r, ctx);
}

StageValues Encapsulator::CharacterizeStages(const Request& r,
                                             const DispatchContext& ctx) const {
  StageValues sv;
  sv.v1 = Stage1(r);
  sv.v2 = Stage2(sv.v1, r, ctx);
  sv.vc = Stage3(sv.v2, r, ctx);
  return sv;
}

void Encapsulator::CharacterizeBatch(std::span<const Request* const> reqs,
                                     const DispatchContext& ctx,
                                     std::span<CValue> out) const {
  assert(reqs.size() == out.size());
  // Full-cascade common case: run each request's three stages back to
  // back in one pass (see FusedFormulaPartitionedBatch).
  if (config_.stage2_mode == Stage2Mode::kFormula &&
      config_.stage3_mode == Stage3Mode::kPartitionedCScan &&
      config_.stage3_bits <= 16) {  // magic-divide exactness bound
    if (curve1_ == nullptr) {
      FusedFormulaPartitionedBatch<false>(reqs, ctx, out);
      return;
    }
    if (!lut1_.empty()) {
      FusedFormulaPartitionedBatch<true>(reqs, ctx, out);
      return;
    }
  }
  // The value array is the carry between stages: each batch stage reads
  // out[i], transforms it, and writes it back, so the whole cascade is
  // three tight passes with no per-request re-dispatch.
  Stage1Batch(reqs, out);
  Stage2Batch(reqs, ctx, out);
  Stage3Batch(reqs, ctx, out);
}

void Encapsulator::CharacterizeStagesBatch(
    std::span<const Request* const> reqs, const DispatchContext& ctx,
    std::span<StageValues> out) const {
  assert(reqs.size() == out.size());
  std::vector<CValue> carry(reqs.size());
  Stage1Batch(reqs, carry);
  for (size_t i = 0; i < reqs.size(); ++i) out[i].v1 = carry[i];
  Stage2Batch(reqs, ctx, carry);
  for (size_t i = 0; i < reqs.size(); ++i) out[i].v2 = carry[i];
  Stage3Batch(reqs, ctx, carry);
  for (size_t i = 0; i < reqs.size(); ++i) out[i].vc = carry[i];
}

CValue Encapsulator::Stage1(const Request& r) const {
  if (curve1_ == nullptr) {
    // Pass-through: single-priority (or no-priority) applications skip
    // SFC1 (Section 4.1).
    if (r.priorities.empty()) return 0.0;
    const uint32_t levels = uint32_t{1} << config_.priority_bits;
    const PriorityLevel p = std::min(r.priorities[0], levels - 1);
    return static_cast<double>(p) / static_cast<double>(levels);
  }
  const uint32_t levels = uint32_t{1} << config_.priority_bits;
  if (!lut1_.empty()) {
    // Hot path: pack the quantized priorities into the row-major cell
    // number (CellOf layout) and load the precomputed value.
    uint64_t cell = 0;
    for (uint32_t k = 0; k < config_.priority_dims; ++k) {
      cell = (cell << config_.priority_bits) |
             std::min<uint32_t>(r.priority(k), levels - 1);
    }
    return lut1_[cell];
  }
  uint32_t point[16];
  for (uint32_t k = 0; k < config_.priority_dims; ++k) {
    point[k] = std::min<uint32_t>(r.priority(k), levels - 1);
  }
  const uint64_t index = curve1_->Index(
      std::span<const uint32_t>(point, config_.priority_dims));
  return NormalizeIndex(index, curve1_->num_cells());
}

CValue Encapsulator::Stage2(CValue v1, const Request& r,
                            const DispatchContext& ctx) const {
  if (config_.stage2_mode == Stage2Mode::kDisabled) return v1;
  const SimTime horizon = MsToSim(config_.deadline_horizon_ms);

  if (config_.stage2_mode == Stage2Mode::kFormula) {
    // Continuous deadline axis in [0, 1]: time-to-deadline over horizon.
    double dl;
    if (!r.has_deadline()) {
      dl = 1.0;
    } else if (r.deadline <= ctx.now) {
      dl = 0.0;
    } else {
      dl = std::min(1.0, static_cast<double>(r.deadline - ctx.now) /
                             static_cast<double>(horizon));
    }
    double v = (v1 + config_.f * dl) / (1.0 + config_.f);
    switch (config_.stage2_tie) {
      case Stage2TieBreak::kNone:
        break;
      case Stage2TieBreak::kEarliestDeadline:
        v += kTieEpsilon * dl;
        break;
      case Stage2TieBreak::kHighestPriority:
        v += kTieEpsilon * v1;
        break;
    }
    return std::min(v, std::nextafter(1.0, 0.0));
  }

  // kCurve: quantize both axes onto the stage grid and walk the 2-D curve.
  const uint32_t cells = uint32_t{1} << config_.stage2_bits;
  const uint32_t pri_cell = QuantizeUnit(v1, cells);
  const uint32_t dl_cell =
      QuantizeDeadline(r.deadline, ctx.now, horizon, cells);
  uint32_t point[2];
  if (config_.stage2_deadline_major) {
    point[0] = dl_cell;
    point[1] = pri_cell;
  } else {
    point[0] = pri_cell;
    point[1] = dl_cell;
  }
  if (!lut2_.empty()) {
    return lut2_[(uint64_t{point[0]} << config_.stage2_bits) | point[1]];
  }
  const uint64_t index = curve2_->Index(std::span<const uint32_t>(point, 2));
  return NormalizeIndex(index, curve2_->num_cells());
}

CValue Encapsulator::Stage3(CValue v2, const Request& r,
                            const DispatchContext& ctx) const {
  if (config_.stage3_mode == Stage3Mode::kDisabled) return v2;
  const uint32_t y_v = CScanDistance(r.cylinder, ctx.head, config_.cylinders);

  if (config_.stage3_mode == Stage3Mode::kPartitionedCScan) {
    // Section 5.3: cut the priority-deadline axis into R partitions of
    // width P_s; serve partition by partition, each in one cylinder sweep,
    // ties on a cylinder broken by the priority-deadline value.
    const uint32_t max_x = uint32_t{1} << config_.stage3_bits;
    const uint32_t x_v = QuantizeUnit(v2, max_x);
    const uint32_t r_parts = config_.partitions_r;
    const uint32_t p_s = (max_x + r_parts - 1) / r_parts;  // partition width
    const uint32_t p_n = x_v / p_s;                        // partition index
    const uint64_t max_y = config_.cylinders;
    const uint64_t raw =
        (static_cast<uint64_t>(p_n) * max_y + y_v) * p_s + (x_v % p_s);
    const uint64_t raw_max = static_cast<uint64_t>(r_parts) * max_y * p_s;
    return static_cast<double>(raw) / static_cast<double>(raw_max);
  }

  // kCurve: 2-D curve over (priority-deadline, distance).
  const uint32_t cells = uint32_t{1} << config_.stage3_bits;
  uint32_t point[2];
  point[0] = QuantizeUnit(v2, cells);
  point[1] = QuantizeUnit(
      static_cast<double>(y_v) / static_cast<double>(config_.cylinders), cells);
  if (!lut3_.empty()) {
    return lut3_[(uint64_t{point[0]} << config_.stage3_bits) | point[1]];
  }
  const uint64_t index = curve3_->Index(std::span<const uint32_t>(point, 2));
  return NormalizeIndex(index, curve3_->num_cells());
}

// ---------------------------------------------------------------------------
// Batch stage passes. Each mirrors its scalar stage operation-for-operation
// (the equivalence tests assert bit-identical values); what changes is
// where the decisions live: mode branches, LUT base pointers, grid scales
// and context terms are resolved once per batch instead of once per
// request, leaving a tight loop whose body is just the per-request math.
// ---------------------------------------------------------------------------

void Encapsulator::Stage1Batch(std::span<const Request* const> reqs,
                               std::span<CValue> v) const {
  const size_t n = reqs.size();
  const uint32_t bits = config_.priority_bits;
  const uint32_t levels = uint32_t{1} << bits;
  if (curve1_ == nullptr) {
    const double levels_d = static_cast<double>(levels);
    for (size_t i = 0; i < n; ++i) {
      const Request& r = *reqs[i];
      if (r.priorities.empty()) {
        v[i] = 0.0;
      } else {
        const PriorityLevel p = std::min(r.priorities[0], levels - 1);
        v[i] = static_cast<double>(p) / levels_d;
      }
    }
    return;
  }
  const uint32_t dims = config_.priority_dims;
  if (!lut1_.empty()) {
    const CValue* const lut = lut1_.data();
    for (size_t i = 0; i < n; ++i) {
      const Request& r = *reqs[i];
      uint64_t cell = 0;
      for (uint32_t k = 0; k < dims; ++k) {
        cell = (cell << bits) | std::min<uint32_t>(r.priority(k), levels - 1);
      }
      v[i] = lut[cell];
    }
    return;
  }
  // Direct curve evaluation, in blocks through IndexBatch: Z-order and
  // Gray run their encode in SIMD lanes (bit-identical to per-point
  // Index(); the other curves take the base per-point loop). Stack
  // buffers keep this allocation-free (dims <= 16).
  const SpaceFillingCurve& curve = *curve1_;
  const uint64_t num_cells = curve.num_cells();
  constexpr size_t kBlock = 64;
  uint32_t flat[kBlock * 16];
  uint64_t idx[kBlock];
  for (size_t i = 0; i < n; i += kBlock) {
    const size_t m = std::min(kBlock, n - i);
    for (size_t j = 0; j < m; ++j) {
      const Request& r = *reqs[i + j];
      for (uint32_t k = 0; k < dims; ++k) {
        flat[j * dims + k] = std::min<uint32_t>(r.priority(k), levels - 1);
      }
    }
    curve.IndexBatch(std::span<const uint32_t>(flat, m * dims),
                     std::span<uint64_t>(idx, m));
    for (size_t j = 0; j < m; ++j) {
      v[i + j] = NormalizeIndex(idx[j], num_cells);
    }
  }
}

void Encapsulator::Stage2Batch(std::span<const Request* const> reqs,
                               const DispatchContext& ctx,
                               std::span<CValue> v) const {
  if (config_.stage2_mode == Stage2Mode::kDisabled) return;
  const size_t n = reqs.size();
  const SimTime horizon = MsToSim(config_.deadline_horizon_ms);
  const SimTime now = ctx.now;

  if (config_.stage2_mode == Stage2Mode::kFormula) {
    const double f = config_.f;
    const double denom = 1.0 + f;
    const double cap = std::nextafter(1.0, 0.0);
    const double horizon_d = static_cast<double>(horizon);
    const Stage2TieBreak tie = config_.stage2_tie;
    for (size_t i = 0; i < n; ++i) {
      const Request& r = *reqs[i];
      double dl;
      if (!r.has_deadline()) {
        dl = 1.0;
      } else if (r.deadline <= now) {
        dl = 0.0;
      } else {
        dl = std::min(1.0, static_cast<double>(r.deadline - now) / horizon_d);
      }
      double val = (v[i] + f * dl) / denom;
      switch (tie) {
        case Stage2TieBreak::kNone:
          break;
        case Stage2TieBreak::kEarliestDeadline:
          val += kTieEpsilon * dl;
          break;
        case Stage2TieBreak::kHighestPriority:
          val += kTieEpsilon * v[i];
          break;
      }
      v[i] = std::min(val, cap);
    }
    return;
  }

  // kCurve
  const uint32_t bits = config_.stage2_bits;
  const uint32_t cells = uint32_t{1} << bits;
  const bool dl_major = config_.stage2_deadline_major;
  if (!lut2_.empty()) {
    const CValue* const lut = lut2_.data();
    for (size_t i = 0; i < n; ++i) {
      const Request& r = *reqs[i];
      const uint32_t pri_cell = QuantizeUnit(v[i], cells);
      const uint32_t dl_cell = QuantizeDeadline(r.deadline, now, horizon, cells);
      const uint32_t x0 = dl_major ? dl_cell : pri_cell;
      const uint32_t x1 = dl_major ? pri_cell : dl_cell;
      v[i] = lut[(uint64_t{x0} << bits) | x1];
    }
    return;
  }
  const SpaceFillingCurve& curve = *curve2_;
  const uint64_t num_cells = curve.num_cells();
  for (size_t i = 0; i < n; ++i) {
    const Request& r = *reqs[i];
    const uint32_t pri_cell = QuantizeUnit(v[i], cells);
    const uint32_t dl_cell = QuantizeDeadline(r.deadline, now, horizon, cells);
    uint32_t point[2];
    point[0] = dl_major ? dl_cell : pri_cell;
    point[1] = dl_major ? pri_cell : dl_cell;
    v[i] = NormalizeIndex(curve.Index(std::span<const uint32_t>(point, 2)),
                          num_cells);
  }
}

void Encapsulator::Stage3Batch(std::span<const Request* const> reqs,
                               const DispatchContext& ctx,
                               std::span<CValue> v) const {
  if (config_.stage3_mode == Stage3Mode::kDisabled) return;
  const size_t n = reqs.size();
  const uint32_t cylinders = config_.cylinders;
  const Cylinder head = ctx.head;

  if (config_.stage3_mode == Stage3Mode::kPartitionedCScan) {
    const uint32_t max_x = uint32_t{1} << config_.stage3_bits;
    const uint32_t r_parts = config_.partitions_r;
    const uint32_t p_s = (max_x + r_parts - 1) / r_parts;  // partition width
    const uint64_t max_y = cylinders;
    const double raw_max =
        static_cast<double>(static_cast<uint64_t>(r_parts) * max_y * p_s);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t y_v = CScanDistance(reqs[i]->cylinder, head, cylinders);
      const uint32_t x_v = QuantizeUnit(v[i], max_x);
      const uint32_t p_n = x_v / p_s;
      const uint64_t raw =
          (static_cast<uint64_t>(p_n) * max_y + y_v) * p_s + (x_v % p_s);
      v[i] = static_cast<double>(raw) / raw_max;
    }
    return;
  }

  // kCurve
  const uint32_t bits = config_.stage3_bits;
  const uint32_t cells = uint32_t{1} << bits;
  const double cylinders_d = static_cast<double>(cylinders);
  if (!lut3_.empty()) {
    const CValue* const lut = lut3_.data();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t y_v = CScanDistance(reqs[i]->cylinder, head, cylinders);
      const uint32_t x0 = QuantizeUnit(v[i], cells);
      const uint32_t x1 =
          QuantizeUnit(static_cast<double>(y_v) / cylinders_d, cells);
      v[i] = lut[(uint64_t{x0} << bits) | x1];
    }
    return;
  }
  const SpaceFillingCurve& curve = *curve3_;
  const uint64_t num_cells = curve.num_cells();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t y_v = CScanDistance(reqs[i]->cylinder, head, cylinders);
    uint32_t point[2];
    point[0] = QuantizeUnit(v[i], cells);
    point[1] = QuantizeUnit(static_cast<double>(y_v) / cylinders_d, cells);
    v[i] = NormalizeIndex(curve.Index(std::span<const uint32_t>(point, 2)),
                          num_cells);
  }
}

template <bool kLut1>
void Encapsulator::FusedFormulaPartitionedBatch(
    std::span<const Request* const> reqs, const DispatchContext& ctx,
    std::span<CValue> v) const {
  FusedInvariants in;
  // Stage-1 invariants.
  in.priority_bits = config_.priority_bits;
  in.levels = uint32_t{1} << in.priority_bits;
  in.levels_d = static_cast<double>(in.levels);
  in.priority_dims = config_.priority_dims;
  in.lut1 = kLut1 ? lut1_.data() : nullptr;
  // Stage-2 invariants.
  in.now = ctx.now;
  in.f = config_.f;
  in.denom = 1.0 + in.f;
  // When denom is a power of two (notably f = 1), dividing by it and
  // multiplying by its reciprocal are the same exact exponent shift, so
  // the per-request divide can become a multiply. Another per-batch
  // invariant decision; the scalar stage pays the divide every call.
  int denom_exp = 0;
  in.denom_pow2 = std::frexp(in.denom, &denom_exp) == 0.5;
  in.inv_denom = in.denom_pow2 ? 1.0 / in.denom : 0.0;
  in.cap = std::nextafter(1.0, 0.0);
  in.horizon_d = static_cast<double>(MsToSim(config_.deadline_horizon_ms));
  in.tie = config_.stage2_tie;
  // Stage-3 invariants.
  in.cylinders = config_.cylinders;
  in.head = ctx.head;
  in.max_x = uint32_t{1} << config_.stage3_bits;
  const uint32_t r_parts = config_.partitions_r;
  in.p_s = (in.max_x + r_parts - 1) / r_parts;  // partition width
  in.raw_max = static_cast<double>(static_cast<uint64_t>(r_parts) *
                                   in.cylinders * in.p_s);
  // x_v / p_s as an exact multiply-shift: with magic = ceil(2^32 / p_s),
  // floor(x_v * magic / 2^32) == x_v / p_s whenever
  // x_v * (magic * p_s - 2^32) < 2^32, and here x_v < 2^16 and the error
  // term is < p_s <= 2^16 (CharacterizeBatch only takes this kernel when
  // stage3_bits <= 16). p_s is a per-batch invariant, so this hoists the
  // per-request hardware divide into one multiply per request.
  in.magic = ((uint64_t{1} << 32) + in.p_s - 1) / in.p_s;
  in.max_x_d = static_cast<double>(in.max_x);
  in.p_s_d = static_cast<double>(in.p_s);
  in.max_y_d = static_cast<double>(in.cylinders);

  // Vector eligibility, beyond the fused-gate conditions: the SIMD
  // kernels redo Stage 3 in f64/i32 lanes, which is exact only while
  // every intermediate stays a small integer (< 2^47 needs cylinders
  // <= 2^30; head < cylinders keeps the C-SCAN wrap inside i32 range —
  // see characterize_kernel.h). An oversized LUT would overflow the i32
  // gather indices; anything ineligible runs the scalar kernel, which
  // has no such bounds.
  const bool simd_ok = simd_level_ != simd::Level::kScalar &&
                       config_.cylinders <= (uint32_t{1} << 30) &&
                       ctx.head < config_.cylinders &&
                       (!kLut1 || lut1_.size() <= (size_t{1} << 30));
  if (simd_ok) {
    if (simd_level_ == simd::Level::kAvx2) {
      CharacterizeFusedAvx2(in, reqs, v, kLut1);
    } else {
      CharacterizeFusedSse2(in, reqs, v, kLut1);
    }
    return;
  }
  const size_t n = reqs.size();
  for (size_t i = 0; i < n; ++i) {
    // The gathered pointers scatter across the dispatcher's slot pool,
    // which outgrows L2 at simulation queue depths; prefetch a few
    // requests ahead (a Request spans two cache lines). This is a
    // batch-only option: the per-request path sees one request at a time.
    if (i + 16 < n) {
      const char* next = reinterpret_cast<const char*>(reqs[i + 16]);
      __builtin_prefetch(next);
      __builtin_prefetch(next + 64);
    }
    v[i] = FusedScalarOne<kLut1>(in, *reqs[i]);
  }
}

}  // namespace csfc
