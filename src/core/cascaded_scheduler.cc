#include "core/cascaded_scheduler.h"

namespace csfc {

Result<std::unique_ptr<CascadedSfcScheduler>> CascadedSfcScheduler::Create(
    const CascadedConfig& config) {
  Result<std::unique_ptr<Encapsulator>> e =
      Encapsulator::Create(config.encapsulator);
  if (!e.ok()) return e.status();
  Result<Dispatcher> d = Dispatcher::Create(config.dispatcher);
  if (!d.ok()) return d.status();
  // Re-characterization only matters when some stage depends on the
  // dispatch context (deadline urgency or cylinder distance).
  const EncapsulatorConfig& ec = config.encapsulator;
  const bool context_dependent =
      ec.stage2_mode != Stage2Mode::kDisabled ||
      ec.stage3_mode != Stage3Mode::kDisabled;
  return std::unique_ptr<CascadedSfcScheduler>(new CascadedSfcScheduler(
      std::move(*e), std::move(*d),
      config.recharacterize_on_swap && context_dependent));
}

CascadedSfcScheduler::CascadedSfcScheduler(
    std::unique_ptr<Encapsulator> encapsulator, Dispatcher dispatcher,
    bool recharacterize_on_swap)
    : encapsulator_(std::move(encapsulator)),
      dispatcher_(std::make_unique<Dispatcher>(std::move(dispatcher))),
      recharacterize_on_swap_(recharacterize_on_swap) {
  name_ = "csfc[" + encapsulator_->config().Signature() + "]";
}

void CascadedSfcScheduler::Enqueue(const Request& r,
                                   const DispatchContext& ctx) {
  last_cvalue_ = encapsulator_->Characterize(r, ctx);
  dispatcher_->Insert(last_cvalue_, r);
}

std::optional<Request> CascadedSfcScheduler::Dispatch(
    const DispatchContext& ctx) {
  if (recharacterize_on_swap_ && dispatcher_->NeedsSwapForPop()) {
    dispatcher_->RekeyWaiting([this, &ctx](const Request& r) {
      return encapsulator_->Characterize(r, ctx);
    });
  }
  return dispatcher_->Pop();
}

void CascadedSfcScheduler::ForEachWaiting(
    const std::function<void(const Request&)>& fn) const {
  dispatcher_->ForEach(fn);
}

}  // namespace csfc
