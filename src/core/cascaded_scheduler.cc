#include "core/cascaded_scheduler.h"

#include <algorithm>
#include <utility>

namespace csfc {

Result<std::unique_ptr<CascadedSfcScheduler>> CascadedSfcScheduler::Create(
    const CascadedConfig& config) {
  Result<std::unique_ptr<Encapsulator>> e =
      Encapsulator::Create(config.encapsulator);
  if (!e.ok()) return e.status();
  DispatcherConfig dc = config.dispatcher;
  if (dc.queue_backend == QueueBackend::kCalendar && dc.calendar_buckets == 0) {
    // Derive the calendar geometry from the SFC3 partition parameters the
    // encapsulator already carries: R sweep partitions of the v_c space,
    // each sliced at cylinder granularity. Slices per sweep are capped so
    // the total lands near kDefaultCalendarBuckets — the point where the
    // calendar's metadata arrays stay L1-resident (finer slicing
    // measurably loses at every queue depth).
    const uint32_t sweeps = std::max(config.encapsulator.partitions_r, 1u);
    const uint32_t max_slices = std::max(kDefaultCalendarBuckets / sweeps, 1u);
    const uint32_t slices =
        std::max(std::min(config.encapsulator.cylinders, max_slices), 1u);
    dc.calendar_buckets =
        std::min(sweeps * slices, BucketedSlotHeap::kMaxBuckets);
  }
  Result<Dispatcher> d = Dispatcher::Create(dc);
  if (!d.ok()) return d.status();
  // Re-characterization only matters when some stage depends on the
  // dispatch context (deadline urgency or cylinder distance).
  const EncapsulatorConfig& ec = config.encapsulator;
  const bool context_dependent =
      ec.stage2_mode != Stage2Mode::kDisabled ||
      ec.stage3_mode != Stage3Mode::kDisabled;
  return std::unique_ptr<CascadedSfcScheduler>(new CascadedSfcScheduler(
      std::move(*e), std::move(*d),
      config.recharacterize_on_swap && context_dependent));
}

CascadedSfcScheduler::CascadedSfcScheduler(
    std::unique_ptr<Encapsulator> encapsulator, Dispatcher dispatcher,
    bool recharacterize_on_swap)
    : encapsulator_(std::move(encapsulator)),
      dispatcher_(std::make_unique<Dispatcher>(std::move(dispatcher))),
      recharacterize_on_swap_(recharacterize_on_swap) {
  name_ = "csfc[" + encapsulator_->config().Signature() + "]";
}

void CascadedSfcScheduler::Observe(obs::Tracer& tracer) {
  tracer_ = &tracer;
  dispatcher_->set_tracer(&tracer);
}

void CascadedSfcScheduler::Enqueue(Request r, const DispatchContext& ctx) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->set_now(ctx.now);
    const StageValues sv = encapsulator_->CharacterizeStages(r, ctx);
    last_cvalue_ = sv.vc;
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kCharacterize;
    e.t = ctx.now;
    e.id = r.id;
    e.v1 = sv.v1;
    e.v2 = sv.v2;
    e.vc = sv.vc;
    tracer_->Emit(e);
  } else {
    last_cvalue_ = encapsulator_->Characterize(r, ctx);
  }
  dispatcher_->Insert(last_cvalue_, std::move(r));
}

void CascadedSfcScheduler::EnqueueBatch(std::span<Request> batch,
                                        const DispatchContext& ctx) {
  if (batch.empty()) return;
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (Request& r : batch) Enqueue(std::move(r), ctx);
    return;
  }
  batch_ptr_scratch_.resize(batch.size());
  batch_key_scratch_.resize(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) batch_ptr_scratch_[i] = &batch[i];
  encapsulator_->CharacterizeBatch(batch_ptr_scratch_, ctx,
                                   batch_key_scratch_);
  for (size_t i = 0; i < batch.size(); ++i) {
    dispatcher_->Insert(batch_key_scratch_[i], std::move(batch[i]));
  }
  last_cvalue_ = batch_key_scratch_.back();
}

std::optional<Request> CascadedSfcScheduler::Dispatch(
    const DispatchContext& ctx) {
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) tracer_->set_now(ctx.now);
  if (recharacterize_on_swap_ && dispatcher_->NeedsSwapForPop()) {
    // Batch formation: the whole forming batch is re-characterized against
    // the current head/time in one CharacterizeBatch call, so the
    // encapsulator hoists its per-batch invariants once instead of
    // re-deriving them per waiting request. This is the dominant swap-time
    // cost at high queue depths.
    if (tracing) {
      // Tracing path: same batch shape, but per-stage values are needed so
      // v_c drift between arrival and service is attributable.
      dispatcher_->RekeyWaitingBatch(
          [this, &ctx](std::span<const Request* const> reqs,
                       std::span<CValue> out) {
            stage_scratch_.resize(reqs.size());  // csfc:alloc-ok(tracing scratch reused across swaps)
            encapsulator_->CharacterizeStagesBatch(reqs, ctx, stage_scratch_);
            for (size_t i = 0; i < reqs.size(); ++i) {
              const StageValues& sv = stage_scratch_[i];
              obs::TraceEvent e;
              e.kind = obs::TraceEventKind::kCharacterize;
              e.t = ctx.now;
              e.id = reqs[i]->id;
              e.v1 = sv.v1;
              e.v2 = sv.v2;
              e.vc = sv.vc;
              e.rekey = true;
              tracer_->Emit(e);
              out[i] = sv.vc;
            }
          });
    } else {
      dispatcher_->RekeyWaitingBatch(
          [this, &ctx](std::span<const Request* const> reqs,
                       std::span<CValue> out) {
            encapsulator_->CharacterizeBatch(reqs, ctx, out);
          });
    }
  }
  return dispatcher_->Pop();
}

void CascadedSfcScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  dispatcher_->ForEach(fn);
}

}  // namespace csfc
