// Characterization values and stage quantization helpers.
//
// Every encapsulator stage produces a *characterization value* normalized
// to [0, 1): the request's position along that stage's linear order, as a
// fraction of the scheduling space. Normalizing keeps the blocking-window
// parameter `w` of the conditionally-preemptive dispatcher meaningful as a
// percentage of the space (exactly how Section 5 sweeps it) regardless of
// grid resolutions.
//
// Doubles represent every curve index exactly (indices are < 2^62 but the
// normalized quotient only needs to be order-preserving, which division by
// a constant power-of-two count is for indices below 2^53; stage grids in
// csfc are <= 2^48 cells).
//
// The quantizers are defined inline: each runs once per stage per
// characterized request — the innermost loop of both the scalar and the
// batch path — and an out-of-line call there costs as much as the handful
// of arithmetic ops it guards.

#ifndef CSFC_CORE_CVALUE_H_
#define CSFC_CORE_CVALUE_H_

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "workload/request.h"

namespace csfc {

/// Normalized characterization value in [0, 1).
using CValue = double;

/// Normalizes a curve index against its cell count.
inline CValue NormalizeIndex(uint64_t index, uint64_t num_cells) {
  return static_cast<double>(index) / static_cast<double>(num_cells);
}

/// Quantizes a normalized value in [0, 1] onto a grid with `cells` cells,
/// clamping to the last cell.
inline uint32_t QuantizeUnit(double v, uint32_t cells) {
  if (v <= 0.0) return 0;
  if (v >= 1.0) return cells - 1;
  const uint32_t cell = static_cast<uint32_t>(v * cells);
  return std::min(cell, cells - 1);
}

/// Maps an absolute deadline to a grid cell: time-to-deadline at `now`,
/// clamped to [0, horizon], scaled so cell 0 = already due (most urgent)
/// and the last cell = relaxed / beyond the horizon.
inline uint32_t QuantizeDeadline(SimTime deadline, SimTime now,
                                 SimTime horizon, uint32_t cells) {
  if (deadline == kNoDeadline) return cells - 1;
  if (deadline <= now) return 0;
  const SimTime remaining = deadline - now;
  if (remaining >= horizon) return cells - 1;
  return QuantizeUnit(static_cast<double>(remaining) /
                          static_cast<double>(horizon),
                      cells);
}

/// Forward C-SCAN distance from `head` to `cyl` (wrapping upward sweep),
/// in cylinders: 0 when the head is already there.
inline uint32_t CScanDistance(Cylinder cyl, Cylinder head,
                              uint32_t cylinders) {
  if (cyl >= head) return cyl - head;
  return cyl + cylinders - head;
}

}  // namespace csfc

#endif  // CSFC_CORE_CVALUE_H_
