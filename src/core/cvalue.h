// Characterization values and stage quantization helpers.
//
// Every encapsulator stage produces a *characterization value* normalized
// to [0, 1): the request's position along that stage's linear order, as a
// fraction of the scheduling space. Normalizing keeps the blocking-window
// parameter `w` of the conditionally-preemptive dispatcher meaningful as a
// percentage of the space (exactly how Section 5 sweeps it) regardless of
// grid resolutions.
//
// Doubles represent every curve index exactly (indices are < 2^62 but the
// normalized quotient only needs to be order-preserving, which division by
// a constant power-of-two count is for indices below 2^53; stage grids in
// csfc are <= 2^48 cells).

#ifndef CSFC_CORE_CVALUE_H_
#define CSFC_CORE_CVALUE_H_

#include <cstdint>

#include "common/types.h"

namespace csfc {

/// Normalized characterization value in [0, 1).
using CValue = double;

/// Normalizes a curve index against its cell count.
inline CValue NormalizeIndex(uint64_t index, uint64_t num_cells) {
  return static_cast<double>(index) / static_cast<double>(num_cells);
}

/// Quantizes a normalized value in [0, 1] onto a grid with `cells` cells,
/// clamping to the last cell.
uint32_t QuantizeUnit(double v, uint32_t cells);

/// Maps an absolute deadline to a grid cell: time-to-deadline at `now`,
/// clamped to [0, horizon], scaled so cell 0 = already due (most urgent)
/// and the last cell = relaxed / beyond the horizon.
uint32_t QuantizeDeadline(SimTime deadline, SimTime now, SimTime horizon,
                          uint32_t cells);

/// Forward C-SCAN distance from `head` to `cyl` (wrapping upward sweep),
/// in cylinders: 0 when the head is already there.
uint32_t CScanDistance(Cylinder cyl, Cylinder head, uint32_t cylinders);

}  // namespace csfc

#endif  // CSFC_CORE_CVALUE_H_
