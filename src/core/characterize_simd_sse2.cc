// SSE2 instantiation of the fused characterization kernel. SSE2 is the
// x86-64 baseline, so this TU needs no special compile flags; on non-x86
// targets it instantiates the scalar-emulation backend under the same
// exported symbols (bit-identical, just not faster).

#include "core/characterize_kernel.h"

namespace csfc {

namespace {
#if CSFC_SIMD_X86
using Backend = simd::Sse2Backend;
#else
using Backend = simd::ScalarBackend;
#endif
}  // namespace

CSFC_HOT void CharacterizeFusedSse2(const FusedInvariants& in,
                                    std::span<const Request* const> reqs,
                                    std::span<CValue> out, bool lut1) {
  if (lut1) {
    FusedSimdKernel<Backend, true>(in, reqs, out);
  } else {
    FusedSimdKernel<Backend, false>(in, reqs, out);
  }
}

const char* CharacterizeFusedSse2Backend() { return Backend::Name(); }

}  // namespace csfc
