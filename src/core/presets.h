// Section 4.2 (Generalization): degenerate Cascaded-SFC configurations
// that emulate classical schedulers, plus convenience factories for the
// configurations the paper's experiments use. Each preset is verified
// against the genuine baseline implementation in presets_test.cc.

#ifndef CSFC_CORE_PRESETS_H_
#define CSFC_CORE_PRESETS_H_

#include <string>

#include "core/cascaded_scheduler.h"

namespace csfc {

/// EDF emulation: no SFC1, stage-2 formula with f >> 1 (deadline
/// dominates), no SFC3, fully-preemptive queue.
CascadedConfig PresetEdf(double deadline_horizon_ms = 1000.0);

/// Multi-queue emulation (priority levels served strictly in order,
/// deadline order within a level): stage-2 curve = C-Scan with priority
/// major, fully-preemptive queue.
CascadedConfig PresetMultiQueue(uint32_t priority_bits,
                                double deadline_horizon_ms = 1000.0);

/// C-SCAN emulation: only SFC3 with R = 1 (a single cylinder sweep per
/// batch), non-preemptive queue.
CascadedConfig PresetCScan(uint32_t cylinders);

/// SCAN-EDF emulation: stage-2 formula with f >> 1 and deadline
/// granularity expressed by the stage-3 partition count.
CascadedConfig PresetScanEdf(uint32_t cylinders,
                             double deadline_horizon_ms = 1000.0);

/// The Figure 5-7 configuration: SFC1 only (relaxed deadlines,
/// transfer-dominated service), conditionally-preemptive with window `w`.
CascadedConfig PresetStage1Only(const std::string& curve, uint32_t dims,
                                uint32_t bits, double window,
                                bool serve_promote = true);

/// The Figure 8-9 configuration: SFC1 (hilbert by default) + stage-2
/// formula with balance factor `f`; SFC3 off.
CascadedConfig PresetStage12(const std::string& sfc1, uint32_t dims,
                             uint32_t bits, double f, double window,
                             double deadline_horizon_ms);

/// The Figure 10 configuration: SFC1+SFC2 via `sfc1`/formula, SFC3 as the
/// R-partitioned C-Scan.
CascadedConfig PresetFull(const std::string& sfc1, uint32_t dims,
                          uint32_t bits, double f, uint32_t r,
                          uint32_t cylinders, double window,
                          double deadline_horizon_ms);

/// The Figure 11 configurations: single priority dimension entered
/// directly into a 2-D stage-2 curve against the deadline.
/// `deadline_major` true puts the deadline on the X (major) axis — the
/// paper's "-X" variants (EDF-like); false yields "-Y" (multi-queue-like).
CascadedConfig PresetStage2Curve(const std::string& sfc2, bool deadline_major,
                                 uint32_t bits, double window,
                                 double deadline_horizon_ms);

/// Returns `config` with the dispatcher queue backend swapped — the knob
/// the backend ablations and `csfc_sim --queue=` sweep. Scheduling
/// behavior is identical for either backend; only the queue data
/// structure changes. Calendar geometry stays derived (calendar_buckets
/// = 0) so each preset picks buckets from its own SFC3 parameters.
CascadedConfig WithQueueBackend(CascadedConfig config, QueueBackend backend);

}  // namespace csfc

#endif  // CSFC_CORE_PRESETS_H_
