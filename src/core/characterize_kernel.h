// The fused characterization kernel (Stage-1 LUT/pass-through + Stage-2
// formula + Stage-3 partitioned C-SCAN), shared between the scalar batch
// path and the SIMD backends.
//
// Three pieces:
//
//   * FusedInvariants — everything CharacterizeBatch hoists per batch:
//     stage-mode decisions, LUT base pointer, the power-of-two-denominator
//     reciprocal, the magic-divide constant, grid scales, and the context
//     terms (now, head).
//
//   * FusedScalarOne — one request through the fused cascade. This IS the
//     scalar batch kernel (the kScalar dispatch level runs a plain loop
//     over it) and the remainder/fallback path of the vector kernels, so
//     elementwise bit-identity across lane widths reduces to the vector
//     ops matching these exact operations in this exact order.
//
//   * FusedSimdKernel<Backend, kLut1> — the vector main loop, written
//     against the common/simd.h op set. Instantiated per ISA in
//     core/characterize_simd_{sse2,avx2}.cc (per-file compile flags).
//
// Why the lane math is exact (the bit-identity argument):
//
//   * Stage 2: `remaining` is a u64 wrap-around difference in both paths;
//     U64ToF64 is the correctly-rounded conversion; min/div/add/mul are
//     elementwise IEEE ops in the same order; the overdue zeroing is a
//     bitwise AND with a full-lane mask, which produces the same +0.0 the
//     scalar select assigns. No FMA contraction: the SIMD TUs compile
//     with -ffp-contract=off (and the scalar path never contracts under
//     the project's default flags).
//
//   * Stage 3: the scalar kernel already replaced the partition divide by
//     the exact multiply-shift `p_n = (x_v * magic) >> 32` (exact for
//     x_v < 2^16, which CharacterizeBatch guarantees by only fusing when
//     stage3_bits <= 16). MulHiU32 is that same multiply-shift when
//     p_s >= 2 (then magic <= 2^31 fits a u32 lane); p_s == 1 has
//     magic = 2^32 and degenerates to p_n = x_v, a per-batch branch. The
//     raw linearization is then evaluated in f64 lanes instead of u64:
//     with cylinders <= 2^30 and x_v <= 2^16 every intermediate is an
//     integer below 2^47 < 2^53, so each f64 op is exact and equals the
//     u64 arithmetic followed by the (exact) cast the scalar path does.
//     Encapsulator only dispatches to the vector kernels under that
//     cylinder bound (plus head < cylinders), and the kernel re-checks
//     each staging chunk's cylinder values (< 2^30) so i32 lanes never
//     see a value whose signed interpretation differs — a violating
//     chunk falls back to FusedScalarOne, keeping bit-identity
//     unconditional.

#ifndef CSFC_CORE_CHARACTERIZE_KERNEL_H_
#define CSFC_CORE_CHARACTERIZE_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>

#include "common/annotations.h"
#include "common/simd.h"
#include "common/types.h"
#include "core/cvalue.h"
#include "core/encapsulator.h"
#include "workload/request.h"

namespace csfc {

/// Weight of the Stage-2 tie-breaking secondary key. Small enough that it
/// can never reorder requests whose primary keys differ by one grid cell
/// (the smallest primary separation is ~2^-16 at the maximum stage-2 grid).
inline constexpr double kTieEpsilon = 0x1.0p-24;

/// Per-batch invariants of the fused formula+partitioned kernel. Built
/// once per CharacterizeBatch call; read-only inside the kernels.
struct FusedInvariants {
  // Stage 1.
  const CValue* lut1 = nullptr;  ///< non-null iff the kLut1 kernels run
  uint32_t priority_bits = 0;
  uint32_t priority_dims = 0;
  uint32_t levels = 0;  ///< 1 << priority_bits
  double levels_d = 0.0;
  // Stage 2.
  SimTime now = 0;
  double f = 0.0;
  double denom = 1.0;      ///< 1 + f
  double inv_denom = 0.0;  ///< 1 / denom when denom_pow2, else unused
  bool denom_pow2 = false;
  double cap = 0.0;  ///< nextafter(1.0, 0.0)
  double horizon_d = 0.0;
  Stage2TieBreak tie = Stage2TieBreak::kNone;
  // Stage 3.
  uint32_t cylinders = 0;
  Cylinder head = 0;
  uint32_t max_x = 0;  ///< 1 << stage3_bits
  uint32_t p_s = 1;    ///< partition width
  uint64_t magic = 0;  ///< ceil(2^32 / p_s); == 2^32 when p_s == 1
  double raw_max = 1.0;
  // Exact small-integer invariants pre-converted for the f64 lanes.
  double max_x_d = 0.0;
  double p_s_d = 0.0;
  double max_y_d = 0.0;  ///< double(cylinders)
};

/// One request through the fused cascade. Operation-for-operation the
/// loop body of PR 3's FusedFormulaPartitionedBatch (see the bit-identity
/// note at the top of this header before touching anything).
template <bool kLut1>
CSFC_HOT inline CValue FusedScalarOne(const FusedInvariants& in,
                                      const Request& r) {
  // Stage 1: LUT load or pass-through.
  double v1;
  if constexpr (kLut1) {
    uint64_t cell = 0;
    for (uint32_t k = 0; k < in.priority_dims; ++k) {
      cell = (cell << in.priority_bits) |
             std::min<uint32_t>(r.priority(k), in.levels - 1);
    }
    v1 = in.lut1[cell];
  } else {
    if (r.priorities.empty()) {
      v1 = 0.0;
    } else {
      const PriorityLevel p = std::min(r.priorities[0], in.levels - 1);
      v1 = static_cast<double>(p) / in.levels_d;
    }
  }
  // Stage 2: the formula blend. The deadline clamp is selects, not
  // branches: deadlines are effectively random per request, so an if/else
  // chain mispredicts constantly. The unsigned difference below is exact
  // whenever it survives the selects — past-due wrap-arounds are
  // discarded by the `due` select, and kNoDeadline's enormous quotient
  // hits the min() clamp at exactly the 1.0 the no-deadline arm returns.
  const SimTime deadline = r.deadline;
  const uint64_t remaining =
      static_cast<uint64_t>(deadline) - static_cast<uint64_t>(in.now);
  double dl = std::min(1.0, static_cast<double>(remaining) / in.horizon_d);
  dl = deadline <= in.now ? 0.0 : dl;
  double val =
      in.denom_pow2 ? (v1 + in.f * dl) * in.inv_denom : (v1 + in.f * dl) / in.denom;
  switch (in.tie) {
    case Stage2TieBreak::kNone:
      break;
    case Stage2TieBreak::kEarliestDeadline:
      val += kTieEpsilon * dl;
      break;
    case Stage2TieBreak::kHighestPriority:
      val += kTieEpsilon * v1;
      break;
  }
  const double v2 = std::min(val, in.cap);
  // Stage 3: partitioned C-SCAN. The C-SCAN wrap test is a select for the
  // same reason as the deadline clamp.
  const uint32_t cyl = r.cylinder;
  const uint32_t y_v = cyl - in.head + (cyl < in.head ? in.cylinders : 0);
  const uint32_t x_v = QuantizeUnit(v2, in.max_x);
  const uint32_t p_n = static_cast<uint32_t>((x_v * in.magic) >> 32);
  const uint64_t raw =
      (static_cast<uint64_t>(p_n) * in.cylinders + y_v) * in.p_s +
      (x_v - p_n * in.p_s);
  return static_cast<double>(raw) / in.raw_max;
}

/// The vector main loop: kWidth requests per iteration, remainder lanes
/// (and blocks whose cylinder values leave the exact i32/f64 domain)
/// through FusedScalarOne.
template <typename B, bool kLut1>
CSFC_HOT inline void FusedSimdKernel(const FusedInvariants& in,
                                     std::span<const Request* const> reqs,
                                     std::span<CValue> v) {
  constexpr size_t kW = static_cast<size_t>(B::kWidth);
  const size_t n = reqs.size();
  // Copy the invariants into a local whose address never escapes: `in`
  // arrives by reference, so without this the compiler must assume every
  // store through `v` may alias it and reloads in.lut1 / in.tie /
  // in.denom_pow2 (and re-evaluates their branches) on every iteration.
  // The scalar batch loop never pays this — its FusedInvariants is a
  // local of the calling TU — and the reloads alone were worth ~25% of
  // the kernel's runtime.
  const FusedInvariants inv = in;
  const Request* const* req_ptr = reqs.data();
  CValue* out = v.data();
  // Scalar invariants of the lane-marshalling loops.
  const uint32_t priority_dims = inv.priority_dims;
  const uint32_t priority_bits = inv.priority_bits;
  const uint32_t levels_m1 = inv.levels - 1;
  // Stage-2 lane invariants.
  const typename B::F64 one_v = B::Set1F64(1.0);
  const typename B::F64 f_v = B::Set1F64(inv.f);
  const typename B::F64 denom_v = B::Set1F64(inv.denom);
  const typename B::F64 inv_denom_v = B::Set1F64(inv.inv_denom);
  const typename B::F64 cap_v = B::Set1F64(inv.cap);
  const typename B::F64 horizon_v = B::Set1F64(inv.horizon_d);
  const typename B::F64 eps_v = B::Set1F64(kTieEpsilon);
  const typename B::F64 levels_v = B::Set1F64(inv.levels_d);
  const typename B::I64 now_v = B::Set1I64(static_cast<int64_t>(inv.now));
  // Stage-3 lane invariants.
  const typename B::I32 head_v = B::Set1I32(static_cast<int32_t>(inv.head));
  const typename B::I32 cylinders_v =
      B::Set1I32(static_cast<int32_t>(inv.cylinders));
  const typename B::I32 max_x_m1_v =
      B::Set1I32(static_cast<int32_t>(inv.max_x - 1));
  const typename B::I32 magic_v =
      B::Set1I32(static_cast<int32_t>(static_cast<uint32_t>(inv.magic)));
  const typename B::F64 max_x_v = B::Set1F64(inv.max_x_d);
  const typename B::F64 p_s_v = B::Set1F64(inv.p_s_d);
  const typename B::F64 max_y_v = B::Set1F64(inv.max_y_d);
  const typename B::F64 raw_max_v = B::Set1F64(inv.raw_max);
  const bool p_s_is_1 = inv.p_s == 1;

  // The loop is three passes over L1-resident staging chunks rather than
  // a gather-compute-store per vector block. Pass 1 marshals request
  // fields into dense arrays in a tight scalar loop; pass 1.5 runs the
  // stage-1 LUT gathers back-to-back so they pipeline at throughput
  // instead of heading pass 2's dependency chain (vgatherdpd is a
  // ~20-cycle latency op); pass 2 is a pure vector loop of plain aligned
  // loads. Interleaving these (the obvious per-block structure) costs
  // ~30% on Skylake-class cores: the vector loads stall on
  // store-forwarding from the lane-sized stores written cycles earlier,
  // and the combined loop body spills invariants to the stack. The chunk
  // is kept small (~1.5 KiB of staging) so pass 1's pointer-chasing
  // misses overlap with pass 2 compute across chunks instead of
  // serializing at L3-resident batch sizes.
  constexpr size_t kChunk = 64;
  static_assert(kChunk % kW == 0);
  alignas(64) int64_t deadline_buf[kChunk];
  alignas(64) int32_t cyl_buf[kChunk];
  alignas(64) int32_t cell_buf[kChunk];
  alignas(64) CValue v1_buf[kChunk];

  // Pass 1, stamped per dimension count: marshalling walks each request
  // once, and the cell-packing inner loop (which runs priority_dims times
  // per request with a bounds select per dimension) unrolls completely
  // for the common small grids. kDims == 0 is the generic-dims fallback.
  // The non-LUT shape reuses the kDims == 1 stamp: its "cell" is the
  // clamped first priority, which is what a one-dimension pack computes.
  const auto marshal = [&](size_t i0, size_t chunk, auto dims_c) {
    constexpr uint32_t kDims = decltype(dims_c)::value;
    uint32_t cyl_or = 0;
    for (size_t j = 0; j < chunk; ++j) {
      // Request fields scatter across the dispatcher's slot pool, which
      // outgrows L2 at simulation queue depths; prefetch ahead (the
      // adjacent-line hardware prefetcher picks up each Request's second
      // cache line). The distance is double the scalar batch loop's:
      // this pass retires requests several times faster, so the same
      // lead in requests is less lead in cycles.
      if (i0 + j + 32 < n) {
        __builtin_prefetch(req_ptr[i0 + j + 32]);
      }
      const Request& r = *req_ptr[i0 + j];
      deadline_buf[j] = r.deadline;
      const uint32_t cyl = r.cylinder;
      cyl_or |= cyl;
      cyl_buf[j] = static_cast<int32_t>(cyl);
      if constexpr (kDims > 0) {
        const size_t psz = r.priorities.size();
        const PriorityLevel* pd = r.priorities.inline_data();
        uint64_t cell = 0;
        if (psz >= kDims) [[likely]] {
          // Full-width request: straight loads, no per-dim selects.
          for (uint32_t k = 0; k < kDims; ++k) {
            cell = (cell << priority_bits) |
                   std::min<uint32_t>(pd[k], levels_m1);
          }
        } else {
          for (uint32_t k = 0; k < kDims; ++k) {
            const uint32_t p = k < psz ? static_cast<uint32_t>(pd[k]) : 0u;
            cell = (cell << priority_bits) | std::min(p, levels_m1);
          }
        }
        cell_buf[j] = static_cast<int32_t>(cell);
      } else {
        uint64_t cell = 0;
        for (uint32_t k = 0; k < priority_dims; ++k) {
          cell = (cell << priority_bits) |
                 std::min<uint32_t>(r.priority(k), levels_m1);
        }
        cell_buf[j] = static_cast<int32_t>(cell);
      }
    }
    return cyl_or;
  };

  size_t i = 0;
  while (i + kW <= n) {
    const size_t chunk = std::min(kChunk, (n - i) & ~(kW - 1));
    uint32_t cyl_or;
    if constexpr (kLut1) {
      switch (priority_dims) {
        case 1:
          cyl_or = marshal(i, chunk, std::integral_constant<uint32_t, 1>{});
          break;
        case 2:
          cyl_or = marshal(i, chunk, std::integral_constant<uint32_t, 2>{});
          break;
        case 3:
          cyl_or = marshal(i, chunk, std::integral_constant<uint32_t, 3>{});
          break;
        default:
          cyl_or = marshal(i, chunk, std::integral_constant<uint32_t, 0>{});
      }
    } else {
      cyl_or = marshal(i, chunk, std::integral_constant<uint32_t, 1>{});
    }
    if ((cyl_or >> 30) != 0) {
      // A cylinder outside the exact-lane domain (see header comment):
      // run this chunk through the scalar kernel instead.
      for (size_t j = 0; j < chunk; ++j) {
        out[i + j] = FusedScalarOne<kLut1>(inv, *req_ptr[i + j]);
      }
      i += chunk;
      continue;
    }
    // Pass 1.5: Stage-1 values into their own staging array. The LUT
    // gather has a ~20-cycle latency and would otherwise head pass 2's
    // dependency chain; in a loop of its own the gathers pipeline at
    // throughput and pass 2 starts from a plain L1 load instead.
    if constexpr (kLut1) {
      for (size_t j = 0; j < chunk; j += kW) {
        B::StoreF64(&v1_buf[j],
                    B::GatherF64(inv.lut1, B::LoadI32(&cell_buf[j])));
      }
    } else {
      for (size_t j = 0; j < chunk; j += kW) {
        B::StoreF64(&v1_buf[j],
                    B::DivF64(B::I32ToF64(B::LoadI32(&cell_buf[j])), levels_v));
      }
    }
    // Pass 2: the vector loop.
    for (size_t j = 0; j < chunk; j += kW) {
      // Stage 1.
      const typename B::F64 v1 = B::LoadF64(&v1_buf[j]);
      // Stage 2.
      const typename B::I64 deadline_v = B::LoadI64(&deadline_buf[j]);
      const typename B::I64 due_mask = B::CmpGtI64(deadline_v, now_v);
      const typename B::F64 remaining_v =
          B::U64ToF64(B::SubI64(deadline_v, now_v));
      typename B::F64 dl = B::MinF64(B::DivF64(remaining_v, horizon_v), one_v);
      dl = B::AndMaskF64(dl, due_mask);
      const typename B::F64 blend = B::AddF64(v1, B::MulF64(f_v, dl));
      typename B::F64 val = inv.denom_pow2 ? B::MulF64(blend, inv_denom_v)
                                           : B::DivF64(blend, denom_v);
      switch (inv.tie) {
        case Stage2TieBreak::kNone:
          break;
        case Stage2TieBreak::kEarliestDeadline:
          val = B::AddF64(val, B::MulF64(eps_v, dl));
          break;
        case Stage2TieBreak::kHighestPriority:
          val = B::AddF64(val, B::MulF64(eps_v, v1));
          break;
      }
      const typename B::F64 v2 = B::MinF64(val, cap_v);
      // Stage 3.
      const typename B::I32 cyl_v = B::LoadI32(&cyl_buf[j]);
      const typename B::I32 wrap_mask = B::CmpLtU32(cyl_v, head_v);
      const typename B::I32 y_v = B::AddI32(B::SubI32(cyl_v, head_v),
                                            B::AndI32(wrap_mask, cylinders_v));
      const typename B::I32 x_v =
          B::MinI32(B::F64ToI32Trunc(B::MulF64(v2, max_x_v)), max_x_m1_v);
      const typename B::I32 p_n = p_s_is_1 ? x_v : B::MulHiU32(x_v, magic_v);
      const typename B::F64 p_n_d = B::I32ToF64(p_n);
      const typename B::F64 x_d = B::I32ToF64(x_v);
      const typename B::F64 y_d = B::I32ToF64(y_v);
      const typename B::F64 raw = B::AddF64(
          B::MulF64(B::AddF64(B::MulF64(p_n_d, max_y_v), y_d), p_s_v),
          B::SubF64(x_d, B::MulF64(p_n_d, p_s_v)));
      B::StoreF64(&out[i + j], B::DivF64(raw, raw_max_v));
    }
    i += chunk;
  }
  for (; i < n; ++i) out[i] = FusedScalarOne<kLut1>(inv, *req_ptr[i]);
}

/// ISA-specific instantiations of FusedSimdKernel, one translation unit
/// each (per-file compile flags, see src/CMakeLists.txt). On targets where
/// the ISA is unavailable the TU instantiates the next-best backend it can
/// compile (scalar emulation on non-x86), which is still bit-identical —
/// only slower. The *Backend() queries report what actually got compiled
/// in (surfaced by Encapsulator::simd_backend() and the bench).
CSFC_HOT void CharacterizeFusedSse2(const FusedInvariants& in,
                                    std::span<const Request* const> reqs,
                                    std::span<CValue> out, bool lut1);
CSFC_HOT void CharacterizeFusedAvx2(const FusedInvariants& in,
                                    std::span<const Request* const> reqs,
                                    std::span<CValue> out, bool lut1);
const char* CharacterizeFusedSse2Backend();
const char* CharacterizeFusedAvx2Backend();

}  // namespace csfc

#endif  // CSFC_CORE_CHARACTERIZE_KERNEL_H_
