// The Cascaded-SFC multimedia disk scheduler: encapsulator + dispatcher
// behind the common Scheduler interface, so it plugs into the same
// simulator as every baseline.

#ifndef CSFC_CORE_CASCADED_SCHEDULER_H_
#define CSFC_CORE_CASCADED_SCHEDULER_H_

#include <memory>
#include <string>

#include "common/annotations.h"
#include "core/dispatcher.h"
#include "core/encapsulator.h"
#include "sched/scheduler.h"

namespace csfc {

/// Complete Cascaded-SFC configuration.
struct CascadedConfig {
  EncapsulatorConfig encapsulator;
  DispatcherConfig dispatcher;
  /// When a new batch forms (queue swap), recompute every waiting
  /// request's v_c against the current head position and time, so each
  /// batch's SFC3 sweep is coherent and deadline urgency is up to date.
  /// Irrelevant (and skipped) when only priority stages are active.
  bool recharacterize_on_swap = true;
};

/// The paper's scheduler.
class CascadedSfcScheduler final : public Scheduler {
 public:
  static Result<std::unique_ptr<CascadedSfcScheduler>> Create(
      const CascadedConfig& config);

  std::string_view name() const override { return name_; }
  CSFC_HOT void Enqueue(Request r, const DispatchContext& ctx) override;
  /// Batch arrivals go through Encapsulator::CharacterizeBatch so the
  /// per-batch invariants (stage weights, normalization) are hoisted once
  /// per drained ring batch instead of once per request. Keys are
  /// identical to what sequential Enqueue would assign under the same
  /// context. The tracing path falls back to per-request Enqueue so the
  /// per-stage characterize events keep their exact shape.
  void EnqueueBatch(std::span<Request> batch,
                    const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return dispatcher_->size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;
  /// Emits characterize events (with the per-stage SFC1/SFC2/SFC3
  /// intermediate values) on every Enqueue and batch re-key, and wires
  /// the dispatcher's preempt / SP-promote / queue-swap / ER-reset
  /// events. See Scheduler::Observe for the lifetime contract.
  void Observe(obs::Tracer& tracer) override;

  /// The characterization value assigned to the most recent Enqueue (for
  /// tests and introspection).
  CValue last_cvalue() const { return last_cvalue_; }

  const Dispatcher& dispatcher() const { return *dispatcher_; }
  const Encapsulator& encapsulator() const { return *encapsulator_; }

 private:
  CascadedSfcScheduler(std::unique_ptr<Encapsulator> encapsulator,
                       Dispatcher dispatcher, bool recharacterize_on_swap);

  std::unique_ptr<Encapsulator> encapsulator_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::string name_;
  CValue last_cvalue_ = 0.0;
  bool recharacterize_on_swap_;
  obs::Tracer* tracer_ = nullptr;  // borrowed; set by Observe
  /// Scratch for the tracing batch-rekey path (per-stage values of each
  /// request in the forming batch), reused across swaps.
  std::vector<StageValues> stage_scratch_;
  /// Scratch for EnqueueBatch (payload pointers + keys), reused across
  /// drained batches.
  std::vector<const Request*> batch_ptr_scratch_;
  std::vector<CValue> batch_key_scratch_;
};

}  // namespace csfc

#endif  // CSFC_CORE_CASCADED_SCHEDULER_H_
