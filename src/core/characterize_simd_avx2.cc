// AVX2 instantiation of the fused characterization kernel. This TU (and
// only this TU) is compiled with -mavx2 -ffp-contract=off — see
// src/CMakeLists.txt; the runtime dispatcher in Encapsulator never calls
// it unless the CPUID probe reported AVX2. -ffp-contract=off pins the
// bit-identity contract: -mavx2 alone would let the compiler contract
// mul+add chains into FMAs on machines that have them, changing rounding
// versus the scalar kernel. If the toolchain can't target AVX2 the TU
// degrades to the best backend it can compile (SSE2 on x86, scalar
// elsewhere) — still bit-identical; the *Backend() query reports which.

#include "core/characterize_kernel.h"

namespace csfc {

namespace {
#if CSFC_SIMD_X86 && defined(__AVX2__)
using Backend = simd::Avx2Backend;
#elif CSFC_SIMD_X86
using Backend = simd::Sse2Backend;
#else
using Backend = simd::ScalarBackend;
#endif
}  // namespace

CSFC_HOT void CharacterizeFusedAvx2(const FusedInvariants& in,
                                    std::span<const Request* const> reqs,
                                    std::span<CValue> out, bool lut1) {
  if (lut1) {
    FusedSimdKernel<Backend, true>(in, reqs, out);
  } else {
    FusedSimdKernel<Backend, false>(in, reqs, out);
  }
}

const char* CharacterizeFusedAvx2Backend() { return Backend::Name(); }

}  // namespace csfc
