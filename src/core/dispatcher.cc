#include "core/dispatcher.h"

#include <utility>

namespace csfc {

Status DispatcherConfig::Validate() const {
  if (window < 0.0) {
    return Status::InvalidArgument("window must be >= 0");
  }
  if (expand_reset && expansion_factor <= 1.0) {
    return Status::InvalidArgument("expansion_factor must be > 1");
  }
  return Status::OK();
}

Result<Dispatcher> Dispatcher::Create(const DispatcherConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return Dispatcher(config);
}

Dispatcher::Dispatcher(const DispatcherConfig& config)
    : config_(config), window_(config.window) {}

void Dispatcher::Insert(CValue v, const Request& r) {
  const auto key = std::make_pair(v, seq_++);
  switch (config_.discipline) {
    case QueueDiscipline::kFullyPreemptive:
      active_.emplace(key, r);
      return;
    case QueueDiscipline::kNonPreemptive:
      waiting_.emplace(key, r);
      return;
    case QueueDiscipline::kConditionallyPreemptive: {
      if (!current_.has_value()) {
        // Nothing has been served yet; the batch forms in q'.
        waiting_.emplace(key, r);
        return;
      }
      // Figure 3: the arrival is compared against T_cur, the request the
      // disk is currently serving (the most recently dispatched one).
      const CValue v_cur = *current_;
      if (v < v_cur - window_) {
        // Significantly higher priority: preempt (Figure 3c).
        active_.emplace(key, r);
        ++preemptions_;
        if (config_.expand_reset) window_ *= config_.expansion_factor;
      } else {
        // Lower priority, or higher but inside the blocking window
        // (Figures 3a and 3b): wait for the next batch.
        waiting_.emplace(key, r);
      }
      return;
    }
  }
}

void Dispatcher::Swap() {
  std::swap(active_, waiting_);
  ++swaps_;
  if (config_.expand_reset) window_ = config_.window;  // ER reset
}

std::optional<Request> Dispatcher::Pop() {
  if (config_.discipline == QueueDiscipline::kConditionallyPreemptive &&
      config_.serve_promote && !active_.empty() && !waiting_.empty()) {
    // SP: promote q' requests that now significantly beat the batch head.
    const CValue v_cur = active_.begin()->first.first;
    auto it = waiting_.begin();
    while (it != waiting_.end() && it->first.first < v_cur - window_) {
      active_.insert(*it);
      it = waiting_.erase(it);
      ++promotions_;
    }
  }
  if (active_.empty()) {
    if (waiting_.empty()) return std::nullopt;
    Swap();
  }
  auto it = active_.begin();
  Request r = it->second;
  current_ = it->first.first;
  active_.erase(it);
  return r;
}

void Dispatcher::RekeyWaiting(
    const std::function<CValue(const Request&)>& key) {
  Queue rekeyed;
  for (auto& [old_key, r] : waiting_) {
    rekeyed.emplace(std::make_pair(key(r), old_key.second), r);
  }
  waiting_ = std::move(rekeyed);
}

void Dispatcher::ForEach(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& [key, r] : active_) fn(r);
  for (const auto& [key, r] : waiting_) fn(r);
}

}  // namespace csfc
