#include "core/dispatcher.h"

#include <cassert>
#include <utility>

namespace csfc {

Status DispatcherConfig::Validate() const {
  if (window < 0.0) {
    return Status::InvalidArgument("window must be >= 0");
  }
  if (expand_reset && expansion_factor <= 1.0) {
    return Status::InvalidArgument("expansion_factor must be > 1");
  }
  if (calendar_buckets > BucketedSlotHeap::kMaxBuckets) {
    return Status::InvalidArgument(
        "calendar_buckets exceeds the v_c grid resolution");
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// ReferenceDispatcher: the original std::map implementation, unchanged.
// --------------------------------------------------------------------------

ReferenceDispatcher::ReferenceDispatcher(const DispatcherConfig& config)
    : config_(config), window_(config.window) {}

void ReferenceDispatcher::Insert(CValue v, const Request& r) {
  const auto key = std::make_pair(v, seq_++);
  switch (config_.discipline) {
    case QueueDiscipline::kFullyPreemptive:
      active_.emplace(key, r);
      return;
    case QueueDiscipline::kNonPreemptive:
      waiting_.emplace(key, r);
      return;
    case QueueDiscipline::kConditionallyPreemptive: {
      if (!current_.has_value()) {
        waiting_.emplace(key, r);
        return;
      }
      const CValue v_cur = *current_;
      if (v < v_cur - window_) {
        active_.emplace(key, r);
        ++preemptions_;
        if (config_.expand_reset) window_ *= config_.expansion_factor;
      } else {
        waiting_.emplace(key, r);
      }
      return;
    }
  }
}

void ReferenceDispatcher::Swap() {
  std::swap(active_, waiting_);
  ++swaps_;
  if (config_.expand_reset) window_ = config_.window;  // ER reset
}

std::optional<Request> ReferenceDispatcher::Pop() {
  if (config_.discipline == QueueDiscipline::kConditionallyPreemptive &&
      config_.serve_promote && !active_.empty() && !waiting_.empty()) {
    const CValue v_cur = active_.begin()->first.first;
    auto it = waiting_.begin();
    while (it != waiting_.end() && it->first.first < v_cur - window_) {
      active_.insert(*it);
      it = waiting_.erase(it);
      ++promotions_;
    }
  }
  if (active_.empty()) {
    if (waiting_.empty()) return std::nullopt;
    Swap();
  }
  auto it = active_.begin();
  // Copy, not move: the reference stays the verbatim seed implementation
  // so the map-vs-flat microbenchmark baseline is stable across PRs.
  Request r = it->second;
  current_ = it->first.first;
  active_.erase(it);
  return r;
}

void ReferenceDispatcher::RekeyWaiting(RekeyFn key) {
  Queue rekeyed;
  for (auto& [old_key, r] : waiting_) {
    rekeyed.emplace(std::make_pair(key(r), old_key.second), std::move(r));
  }
  waiting_ = std::move(rekeyed);
}

void ReferenceDispatcher::RekeyWaitingBatch(BatchRekeyFn key) {
  std::vector<const Request*> reqs;
  reqs.reserve(waiting_.size());
  for (const auto& [old_key, r] : waiting_) reqs.push_back(&r);
  std::vector<CValue> vals(waiting_.size());
  key(reqs, vals);
  Queue rekeyed;
  size_t i = 0;
  for (auto& [old_key, r] : waiting_) {
    rekeyed.emplace(std::make_pair(vals[i++], old_key.second), std::move(r));
  }
  waiting_ = std::move(rekeyed);
}

void ReferenceDispatcher::ForEach(RequestVisitor fn) const {
  for (const auto& [key, r] : active_) fn(r);
  for (const auto& [key, r] : waiting_) fn(r);
}

// --------------------------------------------------------------------------
// Dispatcher: the flat-queue implementation.
// --------------------------------------------------------------------------

Result<Dispatcher> Dispatcher::Create(const DispatcherConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return Dispatcher(config);
}

Dispatcher::Dispatcher(const DispatcherConfig& config)
    : config_(config),
      window_(config.window),
      sp_scan_(config.discipline == QueueDiscipline::kConditionallyPreemptive &&
               config.serve_promote) {
  if (config_.queue_backend == QueueBackend::kCalendar) {
    const uint32_t buckets = config_.calendar_buckets != 0
                                 ? config_.calendar_buckets
                                 : kDefaultCalendarBuckets;
    // Both queues share one calendar geometry so Swap stays a pointer
    // exchange.
    active_.ConfigureCalendar(buckets);
    waiting_.ConfigureCalendar(buckets);
  }
#ifndef NDEBUG
  shadow_ = std::make_unique<ReferenceDispatcher>(config);
#endif
}

#ifndef NDEBUG
Dispatcher::Dispatcher(const Dispatcher& other)
    : config_(other.config_),
      window_(other.window_),
      current_(other.current_),
      preempt_bound_(other.preempt_bound_),
      sp_scan_(other.sp_scan_),
      active_(other.active_),
      waiting_(other.waiting_),
      pool_(other.pool_),
      free_(other.free_),
      seq_(other.seq_),
      preemptions_(other.preemptions_),
      promotions_(other.promotions_),
      swaps_(other.swaps_),
      tracer_(other.tracer_),
      shadow_(std::make_unique<ReferenceDispatcher>(*other.shadow_)) {}

Dispatcher& Dispatcher::operator=(const Dispatcher& other) {
  if (this != &other) *this = Dispatcher(other);
  return *this;
}
#endif

template <typename R>
uint32_t Dispatcher::AllocSlot(R&& r) {
  if (!free_.empty()) {
    const uint32_t slot = free_.back();
    free_.pop_back();
    pool_[slot] = std::forward<R>(r);
    return slot;
  }
  pool_.push_back(std::forward<R>(r));  // csfc:alloc-ok(slot pool grows to peak depth, then recycles)
  return static_cast<uint32_t>(pool_.size() - 1);
}

void Dispatcher::CheckShadow() const {
#ifndef NDEBUG
  assert(size() == shadow_->size());
  assert(current_window() == shadow_->current_window());
  assert(preemptions() == shadow_->preemptions());
  assert(promotions() == shadow_->promotions());
  assert(swaps() == shadow_->swaps());
#endif
}

void Dispatcher::Insert(CValue v, const Request& r) { InsertImpl(v, r); }

void Dispatcher::Insert(CValue v, Request&& r) {
  InsertImpl(v, std::move(r));
}

template <typename R>
void Dispatcher::InsertImpl(CValue v, R&& r) {
#ifndef NDEBUG
  shadow_->Insert(v, r);  // the shadow copies; the pool below may move
#endif
  const RequestId id = r.id;  // for the preempt trace after the transfer
  const QueueKey key{v, seq_++};
  // Route before parking the payload: the queue decision is pure flag
  // math, and knowing the target queue up front lets its lines prefetch
  // underneath the payload copy into the slot pool.
  bool preempt = false;
  switch (config_.discipline) {
    case QueueDiscipline::kFullyPreemptive:
      preempt = true;
      break;
    case QueueDiscipline::kNonPreemptive:
      // The batch always forms in q'.
      break;
    case QueueDiscipline::kConditionallyPreemptive:
      // Figure 3: the arrival is compared against T_cur, the request the
      // disk is currently serving (the most recently dispatched one); it
      // preempts only when significantly higher priority (Figure 3c).
      // Lower priority, higher-but-inside-the-window (Figures 3a, 3b), or
      // nothing served yet (NaN bound): wait for the next batch in q'.
      preempt = v < preempt_bound_;
      break;
  }
  DispatchQueue& q = preempt ? active_ : waiting_;
  q.PrefetchFor(v);
  const uint32_t slot = AllocSlot(std::forward<R>(r));
  q.Push(key, slot);
  if (preempt &&
      config_.discipline == QueueDiscipline::kConditionallyPreemptive) {
    ++preemptions_;
    if (config_.expand_reset) {
      window_ *= config_.expansion_factor;
      preempt_bound_ = current_ - window_;
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kPreempt;
      e.t = tracer_->now();
      e.id = id;
      e.vc = v;
      e.window = window_;
      tracer_->Emit(e);
    }
  }
  // Re-issue the next-pop pool prefetch (Pop's tail already issued one a
  // full op earlier): if the arrival did not displace the minimum this
  // doubles the prefetch lead on the same two lines for ~free, and if it
  // did, the new minimum's slot is the one just written — still hot.
  if (!active_.empty()) {
    const char* next = reinterpret_cast<const char*>(&pool_[active_.MinSlot()]);
    __builtin_prefetch(next);
    __builtin_prefetch(next + 64);
  }
  CheckShadow();
}

void Dispatcher::Swap() {
  swap(active_, waiting_);
  ++swaps_;
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kQueueSwap;
    e.t = tracer_->now();
    e.queue_depth = size();
    tracer_->Emit(e);
  }
  if (config_.expand_reset) {
    window_ = config_.window;  // ER reset
    preempt_bound_ = current_ - window_;
    if (tracing) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kWindowReset;
      e.t = tracer_->now();
      e.window = window_;
      tracer_->Emit(e);
    }
  }
}

std::optional<Request> Dispatcher::Pop() {
  if (sp_scan_ && !active_.empty() && !waiting_.empty()) {
    // SP: promote q' requests that now significantly beat the batch head.
    // The threshold is fixed before the scan (promoted requests do not
    // themselves lower it), matching the reference implementation. Both
    // minima come from caches, so the common no-promotion case is decided
    // in two loads and a compare.
    const CValue bound = active_.MinValue() - window_;
    if (waiting_.MinValue() < bound) {
      const bool tracing = tracer_ != nullptr && tracer_->enabled();
      if (config_.queue_backend == QueueBackend::kCalendar && !tracing) {
        // Calendar backends promote the whole below-threshold slice in
        // one bulk transfer (mostly O(1) run moves); state-identical to
        // the per-entry loop below, which stays for per-promotion
        // tracing and for the flat backend.
        promotions_ += waiting_.PromoteBelow(bound, active_);
      } else {
        do {
          // The target v_c is already known from the waiting queue's
          // cached minimum, so the active queue's landing lines pull in
          // under the PopMin that produces the entry.
          active_.PrefetchFor(waiting_.MinValue());
          const DispatchQueue::Entry e = waiting_.PopMin();
          active_.Push(e.key, e.slot);
          ++promotions_;
          if (tracing) {
            obs::TraceEvent ev;
            ev.kind = obs::TraceEventKind::kPromote;
            ev.t = tracer_->now();
            ev.id = pool_[e.slot].id;
            ev.vc = e.key.v;
            ev.window = window_;
            tracer_->Emit(ev);
          }
        } while (!waiting_.empty() && waiting_.MinValue() < bound);
      }
    }
  }
  if (active_.empty()) {
    if (waiting_.empty()) {
      CheckShadow();
#ifndef NDEBUG
      [[maybe_unused]] const std::optional<Request> ref = shadow_->Pop();
      assert(!ref.has_value());
#endif
      return std::nullopt;
    }
    Swap();
  }
  const DispatchQueue::Entry e = active_.PopMin();
  current_ = e.key.v;
  preempt_bound_ = current_ - window_;
  // The next pop's payload is known now: start pulling it in while the
  // caller processes this one and the next arrival is inserted. At depth
  // >= 10^4 the slot pool outgrows L2 and this hides most of the
  // payload-move miss. A Request spans two cache lines; the move reads
  // both.
  if (!active_.empty()) {
    const char* next = reinterpret_cast<const char*>(&pool_[active_.MinSlot()]);
    __builtin_prefetch(next);
    __builtin_prefetch(next + 64);
  }
  // Move the payload straight from its slot into the returned optional:
  // one ~100-byte transfer per pop, not a slot -> local -> optional pair.
  std::optional<Request> out(std::move(pool_[e.slot]));
  free_.push_back(e.slot);  // csfc:alloc-ok(free list capacity tracks the slot pool)
#ifndef NDEBUG
  const std::optional<Request> ref = shadow_->Pop();
  assert(ref.has_value() && ref->id == out->id);
#endif
  CheckShadow();
  return out;
}

void Dispatcher::RekeyWaiting(RekeyFn key) {
#ifndef NDEBUG
  shadow_->RekeyWaiting(key);
#endif
  waiting_.Rekey([&](uint32_t slot) { return key(pool_[slot]); });
  CheckShadow();
}

void Dispatcher::RekeyWaitingBatch(BatchRekeyFn key) {
#ifndef NDEBUG
  shadow_->RekeyWaitingBatch(key);
#endif
  const size_t n = waiting_.size();
  rekey_reqs_.resize(n);  // csfc:alloc-ok(rekey scratch reused across swaps)
  const Request* const pool = pool_.data();
  size_t gathered = 0;
  // Gather in the backend's AssignKeys consumption order (flat: entries()
  // array order; calendar: bucket traversal order).
  waiting_.ForEachEntrySlot(
      [&](uint32_t slot) { rekey_reqs_[gathered++] = pool + slot; });
  assert(gathered == n);
  rekey_vals_.resize(n);  // csfc:alloc-ok(rekey scratch reused across swaps)
  key(rekey_reqs_, rekey_vals_);
  waiting_.AssignKeys(rekey_vals_);
  CheckShadow();
}

void Dispatcher::ForEach(RequestVisitor fn) const {
  active_.ForEachOrdered([&](uint32_t slot) { fn(pool_[slot]); });
  waiting_.ForEachOrdered([&](uint32_t slot) { fn(pool_[slot]); });
}

}  // namespace csfc
