#include "core/dispatcher.h"

#include <cassert>
#include <utility>

namespace csfc {

Status DispatcherConfig::Validate() const {
  if (window < 0.0) {
    return Status::InvalidArgument("window must be >= 0");
  }
  if (expand_reset && expansion_factor <= 1.0) {
    return Status::InvalidArgument("expansion_factor must be > 1");
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// ReferenceDispatcher: the original std::map implementation, unchanged.
// --------------------------------------------------------------------------

ReferenceDispatcher::ReferenceDispatcher(const DispatcherConfig& config)
    : config_(config), window_(config.window) {}

void ReferenceDispatcher::Insert(CValue v, const Request& r) {
  const auto key = std::make_pair(v, seq_++);
  switch (config_.discipline) {
    case QueueDiscipline::kFullyPreemptive:
      active_.emplace(key, r);
      return;
    case QueueDiscipline::kNonPreemptive:
      waiting_.emplace(key, r);
      return;
    case QueueDiscipline::kConditionallyPreemptive: {
      if (!current_.has_value()) {
        waiting_.emplace(key, r);
        return;
      }
      const CValue v_cur = *current_;
      if (v < v_cur - window_) {
        active_.emplace(key, r);
        ++preemptions_;
        if (config_.expand_reset) window_ *= config_.expansion_factor;
      } else {
        waiting_.emplace(key, r);
      }
      return;
    }
  }
}

void ReferenceDispatcher::Swap() {
  std::swap(active_, waiting_);
  ++swaps_;
  if (config_.expand_reset) window_ = config_.window;  // ER reset
}

std::optional<Request> ReferenceDispatcher::Pop() {
  if (config_.discipline == QueueDiscipline::kConditionallyPreemptive &&
      config_.serve_promote && !active_.empty() && !waiting_.empty()) {
    const CValue v_cur = active_.begin()->first.first;
    auto it = waiting_.begin();
    while (it != waiting_.end() && it->first.first < v_cur - window_) {
      active_.insert(*it);
      it = waiting_.erase(it);
      ++promotions_;
    }
  }
  if (active_.empty()) {
    if (waiting_.empty()) return std::nullopt;
    Swap();
  }
  auto it = active_.begin();
  // Copy, not move: the reference stays the verbatim seed implementation
  // so the map-vs-flat microbenchmark baseline is stable across PRs.
  Request r = it->second;
  current_ = it->first.first;
  active_.erase(it);
  return r;
}

void ReferenceDispatcher::RekeyWaiting(RekeyFn key) {
  Queue rekeyed;
  for (auto& [old_key, r] : waiting_) {
    rekeyed.emplace(std::make_pair(key(r), old_key.second), std::move(r));
  }
  waiting_ = std::move(rekeyed);
}

void ReferenceDispatcher::RekeyWaitingBatch(BatchRekeyFn key) {
  std::vector<const Request*> reqs;
  reqs.reserve(waiting_.size());
  for (const auto& [old_key, r] : waiting_) reqs.push_back(&r);
  std::vector<CValue> vals(waiting_.size());
  key(reqs, vals);
  Queue rekeyed;
  size_t i = 0;
  for (auto& [old_key, r] : waiting_) {
    rekeyed.emplace(std::make_pair(vals[i++], old_key.second), std::move(r));
  }
  waiting_ = std::move(rekeyed);
}

void ReferenceDispatcher::ForEach(RequestVisitor fn) const {
  for (const auto& [key, r] : active_) fn(r);
  for (const auto& [key, r] : waiting_) fn(r);
}

// --------------------------------------------------------------------------
// Dispatcher: the flat-queue implementation.
// --------------------------------------------------------------------------

Result<Dispatcher> Dispatcher::Create(const DispatcherConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return Dispatcher(config);
}

Dispatcher::Dispatcher(const DispatcherConfig& config)
    : config_(config), window_(config.window) {
#ifndef NDEBUG
  shadow_ = std::make_unique<ReferenceDispatcher>(config);
#endif
}

#ifndef NDEBUG
Dispatcher::Dispatcher(const Dispatcher& other)
    : config_(other.config_),
      window_(other.window_),
      current_(other.current_),
      active_(other.active_),
      waiting_(other.waiting_),
      pool_(other.pool_),
      free_(other.free_),
      seq_(other.seq_),
      preemptions_(other.preemptions_),
      promotions_(other.promotions_),
      swaps_(other.swaps_),
      tracer_(other.tracer_),
      shadow_(std::make_unique<ReferenceDispatcher>(*other.shadow_)) {}

Dispatcher& Dispatcher::operator=(const Dispatcher& other) {
  if (this != &other) *this = Dispatcher(other);
  return *this;
}
#endif

template <typename R>
uint32_t Dispatcher::AllocSlot(R&& r) {
  if (!free_.empty()) {
    const uint32_t slot = free_.back();
    free_.pop_back();
    pool_[slot] = std::forward<R>(r);
    return slot;
  }
  pool_.push_back(std::forward<R>(r));  // csfc:alloc-ok(slot pool grows to peak depth, then recycles)
  return static_cast<uint32_t>(pool_.size() - 1);
}

Request Dispatcher::TakeSlot(uint32_t slot) {
  free_.push_back(slot);  // csfc:alloc-ok(free list capacity tracks the slot pool)
  return std::move(pool_[slot]);
}

void Dispatcher::CheckShadow() const {
#ifndef NDEBUG
  assert(size() == shadow_->size());
  assert(current_window() == shadow_->current_window());
  assert(preemptions() == shadow_->preemptions());
  assert(promotions() == shadow_->promotions());
  assert(swaps() == shadow_->swaps());
#endif
}

void Dispatcher::Insert(CValue v, const Request& r) { InsertImpl(v, r); }

void Dispatcher::Insert(CValue v, Request&& r) {
  InsertImpl(v, std::move(r));
}

template <typename R>
void Dispatcher::InsertImpl(CValue v, R&& r) {
#ifndef NDEBUG
  shadow_->Insert(v, r);  // the shadow copies; the pool below may move
#endif
  const RequestId id = r.id;  // for the preempt trace after the transfer
  const QueueKey key{v, seq_++};
  const uint32_t slot = AllocSlot(std::forward<R>(r));
  switch (config_.discipline) {
    case QueueDiscipline::kFullyPreemptive:
      active_.Push(key, slot);
      break;
    case QueueDiscipline::kNonPreemptive:
      waiting_.Push(key, slot);
      break;
    case QueueDiscipline::kConditionallyPreemptive: {
      if (!current_.has_value()) {
        // Nothing has been served yet; the batch forms in q'.
        waiting_.Push(key, slot);
        break;
      }
      // Figure 3: the arrival is compared against T_cur, the request the
      // disk is currently serving (the most recently dispatched one).
      const CValue v_cur = *current_;
      if (v < v_cur - window_) {
        // Significantly higher priority: preempt (Figure 3c).
        active_.Push(key, slot);
        ++preemptions_;
        if (config_.expand_reset) window_ *= config_.expansion_factor;
        if (tracer_ != nullptr && tracer_->enabled()) {
          obs::TraceEvent e;
          e.kind = obs::TraceEventKind::kPreempt;
          e.t = tracer_->now();
          e.id = id;
          e.vc = v;
          e.window = window_;
          tracer_->Emit(e);
        }
      } else {
        // Lower priority, or higher but inside the blocking window
        // (Figures 3a and 3b): wait for the next batch.
        waiting_.Push(key, slot);
      }
      break;
    }
  }
  CheckShadow();
}

void Dispatcher::Swap() {
  swap(active_, waiting_);
  ++swaps_;
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kQueueSwap;
    e.t = tracer_->now();
    e.queue_depth = size();
    tracer_->Emit(e);
  }
  if (config_.expand_reset) {
    window_ = config_.window;  // ER reset
    if (tracing) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kWindowReset;
      e.t = tracer_->now();
      e.window = window_;
      tracer_->Emit(e);
    }
  }
}

std::optional<Request> Dispatcher::Pop() {
  if (config_.discipline == QueueDiscipline::kConditionallyPreemptive &&
      config_.serve_promote && !active_.empty() && !waiting_.empty()) {
    // SP: promote q' requests that now significantly beat the batch head.
    // The threshold is fixed before the scan (promoted requests do not
    // themselves lower it), matching the reference implementation.
    const CValue v_cur = active_.Min().key.v;
    while (!waiting_.empty() && waiting_.Min().key.v < v_cur - window_) {
      const SlotHeap::Entry e = waiting_.PopMin();
      active_.Push(e.key, e.slot);
      ++promotions_;
      if (tracer_ != nullptr && tracer_->enabled()) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceEventKind::kPromote;
        ev.t = tracer_->now();
        ev.id = pool_[e.slot].id;
        ev.vc = e.key.v;
        ev.window = window_;
        tracer_->Emit(ev);
      }
    }
  }
  if (active_.empty()) {
    if (waiting_.empty()) {
      CheckShadow();
#ifndef NDEBUG
      [[maybe_unused]] const std::optional<Request> ref = shadow_->Pop();
      assert(!ref.has_value());
#endif
      return std::nullopt;
    }
    Swap();
  }
  const SlotHeap::Entry e = active_.PopMin();
  current_ = e.key.v;
  Request r = TakeSlot(e.slot);
#ifndef NDEBUG
  const std::optional<Request> ref = shadow_->Pop();
  assert(ref.has_value() && ref->id == r.id);
#endif
  CheckShadow();
  return r;
}

void Dispatcher::RekeyWaiting(RekeyFn key) {
#ifndef NDEBUG
  shadow_->RekeyWaiting(key);
#endif
  waiting_.Rekey([&](uint32_t slot) { return key(pool_[slot]); });
  CheckShadow();
}

void Dispatcher::RekeyWaitingBatch(BatchRekeyFn key) {
#ifndef NDEBUG
  shadow_->RekeyWaitingBatch(key);
#endif
  const std::span<const SlotHeap::Entry> entries = waiting_.entries();
  rekey_reqs_.resize(entries.size());  // csfc:alloc-ok(rekey scratch reused across swaps)
  const Request* const pool = pool_.data();
  for (size_t i = 0; i < entries.size(); ++i) {
    rekey_reqs_[i] = pool + entries[i].slot;
  }
  rekey_vals_.resize(entries.size());  // csfc:alloc-ok(rekey scratch reused across swaps)
  key(rekey_reqs_, rekey_vals_);
  waiting_.AssignKeys(rekey_vals_);
  CheckShadow();
}

void Dispatcher::ForEach(RequestVisitor fn) const {
  active_.ForEachOrdered([&](uint32_t slot) { fn(pool_[slot]); });
  waiting_.ForEachOrdered([&](uint32_t slot) { fn(pool_[slot]); });
}

}  // namespace csfc
