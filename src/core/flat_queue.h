// Cache-friendly priority queue for the dispatcher hot path.
//
// The dispatcher's q / q' queues need five operations: insert, pop-min,
// peek-min, bulk rekey (batch re-characterization), and ordered visitation
// (SP promotion scans and metric walks). A node-based std::map pays an
// allocation plus pointer-chasing tree walks for every one of them; this
// queue instead keeps (key, slot) entries in one contiguous 4-ary min-heap
// keyed by (v_c, insertion sequence). Requests themselves live in a slot
// pool owned by the dispatcher, so sift operations move 24-byte POD
// entries over hot cache lines — never the ~100-byte Request payloads —
// and moving an entry between queues (SP promotion, queue swap) never
// touches the payload at all.
//
// Ordering semantics are identical to the map it replaces: lower v_c
// first, exact v_c ties broken FIFO by the insertion sequence number. The
// heap is not globally sorted, so order-dependent walks (ForEachOrdered)
// sort an index scratch vector on demand — those run once per dispatch in
// metric paths, not per comparison.

#ifndef CSFC_CORE_FLAT_QUEUE_H_
#define CSFC_CORE_FLAT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/cvalue.h"

namespace csfc {

/// Queue ordering key: characterization value with FIFO tie-break.
struct QueueKey {
  CValue v = 0.0;
  uint64_t seq = 0;

  friend bool operator<(const QueueKey& a, const QueueKey& b) {
    return a.v != b.v ? a.v < b.v : a.seq < b.seq;
  }
};

/// Flat 4-ary min-heap of (key, payload-slot) entries.
class SlotHeap {
 public:
  struct Entry {
    QueueKey key;
    uint32_t slot = 0;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  /// Smallest (v, seq) entry; heap must be non-empty.
  const Entry& Min() const { return heap_.front(); }

  void Push(QueueKey key, uint32_t slot) {
    heap_.push_back(Entry{key, slot});
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the minimum entry; heap must be non-empty.
  Entry PopMin() {
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Recomputes every entry's v_c from its slot (sequence numbers are
  /// preserved) and restores the heap in one O(n) Floyd pass.
  void Rekey(const std::function<CValue(uint32_t)>& value_of_slot) {
    for (Entry& e : heap_) e.key.v = value_of_slot(e.slot);
    if (heap_.size() < 2) return;
    for (size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) SiftDown(i);
  }

  /// Visits all slots in ascending (v_c, seq) order.
  void ForEachOrdered(const std::function<void(uint32_t)>& fn) const {
    std::vector<Entry> sorted(heap_);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    for (const Entry& e : sorted) fn(e.slot);
  }

  friend void swap(SlotHeap& a, SlotHeap& b) { a.heap_.swap(b.heap_); }

 private:
  static constexpr size_t kArity = 4;

  void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!(e.key < heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    const Entry e = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      const size_t last = std::min(first + kArity, n);
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
};

}  // namespace csfc

#endif  // CSFC_CORE_FLAT_QUEUE_H_
