// Cache-friendly priority queue for the dispatcher hot path.
//
// The dispatcher's q / q' queues need five operations: insert, pop-min,
// peek-min, bulk rekey (batch re-characterization), and ordered visitation
// (SP promotion scans and metric walks). A node-based std::map pays an
// allocation plus pointer-chasing tree walks for every one of them; this
// queue instead keeps (key, slot) entries in one contiguous 4-ary min-heap
// keyed by (v_c, insertion sequence). Requests themselves live in a slot
// pool owned by the dispatcher, so sift operations move 24-byte POD
// entries over hot cache lines — never the ~100-byte Request payloads —
// and moving an entry between queues (SP promotion, queue swap) never
// touches the payload at all.
//
// Ordering semantics are identical to the map it replaces: lower v_c
// first, exact v_c ties broken FIFO by the insertion sequence number. The
// heap is not globally sorted, so order-dependent walks (ForEachOrdered)
// sort an index scratch vector on demand — those run once per dispatch in
// metric paths, not per comparison.
//
// Callback-taking operations (Rekey, ForEachOrdered) are templates over
// the callable type: the callable is invoked once per entry, so routing
// it through std::function would put an indirect call (and a potential
// allocation at the call site) inside the tightest dispatcher loops.

#ifndef CSFC_CORE_FLAT_QUEUE_H_
#define CSFC_CORE_FLAT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "core/cvalue.h"

namespace csfc {

/// Queue ordering key: characterization value with FIFO tie-break.
struct QueueKey {
  CValue v = 0.0;
  uint64_t seq = 0;

  friend bool operator<(const QueueKey& a, const QueueKey& b) {
    return a.v != b.v ? a.v < b.v : a.seq < b.seq;
  }
};

/// Flat 4-ary min-heap of (key, payload-slot) entries.
class SlotHeap {
 public:
  struct Entry {
    QueueKey key;
    uint32_t slot = 0;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  /// Smallest (v, seq) entry; heap must be non-empty.
  const Entry& Min() const { return heap_.front(); }

  /// Raw entries in heap order (NOT sorted). Exposed so the dispatcher's
  /// batch rekey can gather payload slots without a per-entry callback;
  /// pair with AssignKeys, which consumes values in this same order.
  std::span<const Entry> entries() const { return {heap_.data(), heap_.size()}; }

  CSFC_HOT void Push(QueueKey key, uint32_t slot) {
    heap_.push_back(Entry{key, slot});  // csfc:alloc-ok(amortized heap storage growth)
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the minimum entry; heap must be non-empty.
  ///
  /// The displaced back() entry is re-seated with the classic top-down
  /// sift (compare against the min child, early-exit). A hole-based
  /// variant (walk the hole to a leaf on child comparisons only, then
  /// bubble the displaced entry back up) was benchmarked here and lost at
  /// every queue depth on the steady-state insert+pop workload — at depth
  /// 10^4 by almost 2x — because it always pays the full-height walk plus
  /// a second pass of writes, while the classic sift's early exit is
  /// cheaper than its extra comparison on this entry-size/arity mix.
  CSFC_HOT Entry PopMin() {
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Recomputes every entry's v_c from its slot (sequence numbers are
  /// preserved) and restores the heap in one O(n) Floyd pass. The callable
  /// is invoked exactly once per entry, in unspecified order.
  template <typename ValueOfSlot>
  CSFC_HOT void Rekey(ValueOfSlot&& value_of_slot) {
    RekeyAll([&](size_t i) { return value_of_slot(heap_[i].slot); });
  }

  /// Batch form of Rekey: values[i] becomes entry i's v_c, where i indexes
  /// entries() order (sequence numbers are preserved), then the heap is
  /// restored in one O(n) Floyd pass.
  CSFC_HOT void AssignKeys(std::span<const CValue> values) {
    assert(values.size() == heap_.size());
    RekeyAll([&](size_t i) { return values[i]; });
  }

  /// Visits all slots in ascending (v_c, seq) order. The sort scratch is a
  /// member reused across calls: metric walks run once per dispatch, and a
  /// fresh allocation per walk was measurable at simulation queue depths.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    scratch_.assign(heap_.begin(), heap_.end());  // csfc:alloc-ok(sort scratch reused across walks)
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    for (const Entry& e : scratch_) fn(e.slot);
  }

  friend void swap(SlotHeap& a, SlotHeap& b) { a.heap_.swap(b.heap_); }

 private:
  static constexpr size_t kArity = 4;

  /// Rewrites every key (key_of_index maps an entries() index to its new
  /// v_c) and restores the heap in the same backward pass — Floyd's
  /// rebuild fused with the key-update sweep. Walking indices descending
  /// makes the fusion sound: a sift at node j moves entries only within
  /// j's subtree (indices > j), so when the walk reaches index i the entry
  /// there is still the original entry i, and every key a sift compares
  /// has already been rewritten.
  template <typename KeyOfIndex>
  CSFC_HOT void RekeyAll(KeyOfIndex&& key_of_index) {
    const size_t n = heap_.size();
    for (size_t i = n; i-- > 0;) {
      heap_[i].key.v = key_of_index(i);
      if (i * kArity + 1 >= n) continue;  // leaf: nothing to sift
      // The pass walks node indices downward while each sift reads the
      // node's children at ~4x the index stride — a backward gallop the
      // hardware prefetcher does not track at large heap sizes.
      if (i >= 8 && (i - 8) * kArity + 1 < n) {
        __builtin_prefetch(&heap_[(i - 8) * kArity + 1]);
      }
      SiftDown(i);
    }
  }

  CSFC_HOT void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!(e.key < heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  CSFC_HOT void SiftDown(size_t i) {
    const Entry e = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      const size_t last = std::min(first + kArity, n);
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
  // ForEachOrdered's sort buffer (scratch only: contents are meaningless
  // between calls, so copies of the heap need not preserve it).
  mutable std::vector<Entry> scratch_;
};

// Sift operations copy entries raw over hot cache lines; keys and entries
// must stay trivially copyable PODs for that to remain a memmove.
static_assert(std::is_trivially_copyable_v<QueueKey>,
              "QueueKey must stay trivially copyable");
static_assert(std::is_trivially_copyable_v<SlotHeap::Entry>,
              "SlotHeap::Entry must stay trivially copyable");

}  // namespace csfc

#endif  // CSFC_CORE_FLAT_QUEUE_H_
