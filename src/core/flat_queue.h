// Cache-friendly priority queue for the dispatcher hot path.
//
// The dispatcher's q / q' queues need five operations: insert, pop-min,
// peek-min, bulk rekey (batch re-characterization), and ordered visitation
// (SP promotion scans and metric walks). A node-based std::map pays an
// allocation plus pointer-chasing tree walks for every one of them; this
// queue instead keeps (key, slot) entries in one contiguous 4-ary min-heap
// keyed by (v_c, insertion sequence). Requests themselves live in a slot
// pool owned by the dispatcher, so sift operations move 24-byte POD
// entries over hot cache lines — never the ~100-byte Request payloads —
// and moving an entry between queues (SP promotion, queue swap) never
// touches the payload at all.
//
// Ordering semantics are identical to the map it replaces: lower v_c
// first, exact v_c ties broken FIFO by the insertion sequence number. The
// heap is not globally sorted, so order-dependent walks (ForEachOrdered)
// sort an index scratch vector on demand — those run once per dispatch in
// metric paths, not per comparison.
//
// Callback-taking operations (Rekey, ForEachOrdered) are templates over
// the callable type: the callable is invoked once per entry, so routing
// it through std::function would put an indirect call (and a potential
// allocation at the call site) inside the tightest dispatcher loops.
//
// Past depth ~1000 the monolithic heap stops paying off (see
// BucketedSlotHeap below for the depth-scalable calendar-queue backend);
// DispatchQueue at the bottom is the backend-selecting facade the
// dispatcher actually holds.

#ifndef CSFC_CORE_FLAT_QUEUE_H_
#define CSFC_CORE_FLAT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "core/cvalue.h"

namespace csfc {

/// Queue ordering key: characterization value with FIFO tie-break.
struct QueueKey {
  CValue v = 0.0;
  uint64_t seq = 0;

  friend bool operator<(const QueueKey& a, const QueueKey& b) {
    return a.v != b.v ? a.v < b.v : a.seq < b.seq;
  }
};

/// Flat 4-ary min-heap of (key, payload-slot) entries.
class SlotHeap {
 public:
  struct Entry {
    QueueKey key;
    uint32_t slot = 0;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  /// Smallest (v, seq) entry; heap must be non-empty.
  const Entry& Min() const { return heap_.front(); }

  /// Raw entries in heap order (NOT sorted). Exposed so the dispatcher's
  /// batch rekey can gather payload slots without a per-entry callback;
  /// pair with AssignKeys, which consumes values in this same order.
  std::span<const Entry> entries() const { return {heap_.data(), heap_.size()}; }

  /// Starts pulling in the line Push is about to append to. Callers issue
  /// it a few dozen cycles before Push (the dispatcher does, under the
  /// payload copy into the slot pool).
  CSFC_HOT void PrefetchFor(CValue /*v*/) const {
    if (!heap_.empty()) __builtin_prefetch(&heap_[heap_.size() - 1]);
  }

  CSFC_HOT void Push(QueueKey key, uint32_t slot) {
    heap_.push_back(Entry{key, slot});  // csfc:alloc-ok(amortized heap storage growth)
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the minimum entry; heap must be non-empty.
  ///
  /// The displaced back() entry is re-seated with the classic top-down
  /// sift (compare against the min child, early-exit). A hole-based
  /// variant (walk the hole to a leaf on child comparisons only, then
  /// bubble the displaced entry back up) was benchmarked here and lost at
  /// every queue depth on the steady-state insert+pop workload — at depth
  /// 10^4 by almost 2x — because it always pays the full-height walk plus
  /// a second pass of writes, while the classic sift's early exit is
  /// cheaper than its extra comparison on this entry-size/arity mix.
  CSFC_HOT Entry PopMin() {
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Recomputes every entry's v_c from its slot (sequence numbers are
  /// preserved) and restores the heap in one O(n) Floyd pass. The callable
  /// is invoked exactly once per entry, in unspecified order.
  template <typename ValueOfSlot>
  CSFC_HOT void Rekey(ValueOfSlot&& value_of_slot) {
    RekeyAll([&](size_t i) { return value_of_slot(heap_[i].slot); });
  }

  /// Batch form of Rekey: values[i] becomes entry i's v_c, where i indexes
  /// entries() order (sequence numbers are preserved), then the heap is
  /// restored in one O(n) Floyd pass.
  CSFC_HOT void AssignKeys(std::span<const CValue> values) {
    assert(values.size() == heap_.size());
    RekeyAll([&](size_t i) { return values[i]; });
  }

  /// Visits all slots in ascending (v_c, seq) order. The sort scratch is a
  /// member reused across calls: metric walks run once per dispatch, and a
  /// fresh allocation per walk was measurable at simulation queue depths.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    scratch_.assign(heap_.begin(), heap_.end());  // csfc:alloc-ok(sort scratch reused across walks)
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    for (const Entry& e : scratch_) fn(e.slot);
  }

  friend void swap(SlotHeap& a, SlotHeap& b) { a.heap_.swap(b.heap_); }

 private:
  static constexpr size_t kArity = 4;

  /// Rewrites every key (key_of_index maps an entries() index to its new
  /// v_c) and restores the heap in the same backward pass — Floyd's
  /// rebuild fused with the key-update sweep. Walking indices descending
  /// makes the fusion sound: a sift at node j moves entries only within
  /// j's subtree (indices > j), so when the walk reaches index i the entry
  /// there is still the original entry i, and every key a sift compares
  /// has already been rewritten.
  template <typename KeyOfIndex>
  CSFC_HOT void RekeyAll(KeyOfIndex&& key_of_index) {
    const size_t n = heap_.size();
    for (size_t i = n; i-- > 0;) {
      heap_[i].key.v = key_of_index(i);
      if (i * kArity + 1 >= n) continue;  // leaf: nothing to sift
      // The pass walks node indices downward while each sift reads the
      // node's children at ~4x the index stride — a backward gallop the
      // hardware prefetcher does not track at large heap sizes.
      if (i >= 8 && (i - 8) * kArity + 1 < n) {
        __builtin_prefetch(&heap_[(i - 8) * kArity + 1]);
      }
      SiftDown(i);
    }
  }

  CSFC_HOT void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!(e.key < heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  CSFC_HOT void SiftDown(size_t i) {
    const Entry e = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      const size_t last = std::min(first + kArity, n);
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
  // ForEachOrdered's sort buffer (scratch only: contents are meaningless
  // between calls, so copies of the heap need not preserve it).
  mutable std::vector<Entry> scratch_;
};

// Sift operations copy entries raw over hot cache lines; keys and entries
// must stay trivially copyable PODs for that to remain a memmove.
static_assert(std::is_trivially_copyable_v<QueueKey>,
              "QueueKey must stay trivially copyable");
static_assert(std::is_trivially_copyable_v<SlotHeap::Entry>,
              "SlotHeap::Entry must stay trivially copyable");

/// Dispatcher queue backend (DispatcherConfig::queue_backend).
enum class QueueBackend {
  kFlat,      ///< one monolithic 4-ary SlotHeap per queue (PR 1)
  kCalendar,  ///< calendar of v_c-range buckets, each a short sorted run
};

/// Two-level calendar queue over v_c sweep ranges.
///
/// The monolithic SlotHeap stops beating std::map past depth ~1000: every
/// sift walks log_4(n) levels of a 240KB+ array the prefetcher cannot
/// follow. This queue instead slices the characterization space [0, 1)
/// into `num_buckets` equal v_c ranges — the same structure SFC3's
/// R-partitioned C-SCAN already imposes on v_c, where each partition is
/// one cylinder sweep — and keeps one short descending sorted run per
/// range. Under SCAN-like tours occupancy per range stays near uniform
/// (Bachmat's space-time analysis), so the common case is O(1): Push
/// lands in one hot bucket found with an exact multiply-shift (the
/// magic-divide trick from the batch characterization kernel) and seats
/// via a branchless binary search over a handful of entries, PopMin
/// truncates the tail of the bucket under a cursor that follows the
/// sweep direction — zero compares — and a two-level occupancy bitmap
/// skips empty ranges in a couple of ctz instructions. (Small per-bucket
/// heaps were the first cut; the sorted runs replaced them because the
/// pop-side min-of-children scan dominated the compare budget, while a
/// run's insert memmove stays inside one or two L1 lines.)
///
/// The layout is struct-of-arrays: an 8-byte {len, cap} record per bucket
/// and a bare data pointer per bucket live in two dense arrays (a few KB
/// at the default geometry — L1-resident), while the entry arrays they
/// describe are reserved per bucket at Configure. A queue op therefore
/// touches L1 metadata plus exactly one entry line in the common case,
/// instead of chasing a 24-byte std::vector header per bucket.
///
/// Ordering is bit-identical to SlotHeap / the std::map reference: the
/// bucket index is a monotone non-decreasing function of v (equal v maps
/// to equal buckets), so the global (v, seq) minimum is always the run
/// tail of the lowest non-empty bucket, and exact-v FIFO ties resolve
/// inside one bucket's run exactly as they would in the monolithic heap.
///
/// Rekey exploits the same structure: re-characterization against a new
/// head position moves a request's v_c by little in calendar terms, so
/// most entries stay in their bucket — an intra-bucket key rewrite plus
/// one short re-sort — and the few that cross a range boundary go
/// through a migration scratch list, preserving assignment order.
///
/// All bucket storage is pre-sized at Configure (cold); steady-state ops
/// allocate nothing. Growth past a bucket's reserve happens only on
/// adversarial single-range workloads and is marked csfc:alloc-ok.
class BucketedSlotHeap {
 public:
  /// Internal node: 16 bytes, four per 64-byte line, so a typical run
  /// insert moves entries within a line or two and the queue's entry
  /// working set is half what (QueueKey, slot) would occupy — the entry
  /// lines are what misses at depth >= 10^4.
  ///
  /// The sequence number is truncated to 32 bits and compared with
  /// wrap-aware (serial-number) arithmetic: the FIFO tie-break is exact
  /// as long as entries coexisting in the queue were issued within 2^31
  /// inserts of each other, which bounds every realistic workload by
  /// orders of magnitude (the equivalence suites cross-check against the
  /// full-width reference).
  struct alignas(16) Entry {
    CValue v = 0.0;
    uint32_t seq = 0;
    uint32_t slot = 0;
  };

  /// (v, seq) order with the wrap-aware FIFO tie-break. Bitwise, not
  /// short-circuit: random v makes the first compare unpredictable, and
  /// the sift loops want a flag the compiler can turn into a select
  /// instead of a mispredicting branch pair.
  static bool Less(const Entry& a, const Entry& b) {
    return (a.v < b.v) |
           ((a.v == b.v) & (static_cast<int32_t>(a.seq - b.seq) < 0));
  }

  /// Bucket counts are capped at the index grid resolution (2^kGridBits):
  /// finer slicing cannot separate values the quantizer maps to one cell.
  static constexpr uint32_t kMaxBuckets = 1u << 16;

  BucketedSlotHeap() = default;
  // Entry storage is uniquely owned, so copies (the debug-build shadow
  // dispatcher deep-copy) rebuild it; moves and swaps stay pointer-level.
  BucketedSlotHeap(const BucketedSlotHeap& other) { CopyFrom(other); }
  BucketedSlotHeap& operator=(const BucketedSlotHeap& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  BucketedSlotHeap(BucketedSlotHeap&&) = default;
  BucketedSlotHeap& operator=(BucketedSlotHeap&&) = default;

  /// Builds the calendar: `num_buckets` equal v_c ranges (clamped to
  /// [1, kMaxBuckets]), each bucket's run storage reserved up front so
  /// the steady state never allocates. Cold path; call once while empty.
  void Configure(uint32_t num_buckets) {
    assert(size_ == 0);
    num_buckets_ = std::clamp<uint32_t>(num_buckets, 1, kMaxBuckets);
    per_bucket_ = (kGridCells + num_buckets_ - 1) / num_buckets_;
    magic_ = ((uint64_t{1} << 32) + per_bucket_ - 1) / per_bucket_;
#ifndef NDEBUG
    // The multiply-shift must reproduce cell / per_bucket_ exactly for
    // every grid cell (it does for divisors <= 2^16; see the batch
    // characterization kernel for the derivation).
    for (uint32_t cell = 0; cell < kGridCells; ++cell) {
      assert(((uint64_t{cell} * magic_) >> 32) == cell / per_bucket_);
    }
#endif
    // All buckets start in one contiguous slab, in bucket order: the pop
    // cursor drains buckets in exactly that order, so the drain sweep
    // walks memory sequentially and the hardware prefetcher tracks it.
    // Only buckets that outgrow the reserve move to their own array.
    slab_ = std::make_unique<Entry[]>(size_t{num_buckets_} * kBucketReserve);
    storage_.clear();
    storage_.resize(num_buckets_);
    buckets_.assign(num_buckets_, Bucket{});
    for (uint32_t b = 0; b < num_buckets_; ++b) {
      buckets_[b].data = slab_.get() + size_t{b} * kBucketReserve;
      buckets_[b].cap = kBucketReserve;
    }
    live_.assign((num_buckets_ + 63u) / 64u, 0);
    summary_.assign((live_.size() + 63u) / 64u, 0);
    size_ = 0;
    cur_ = 0;
    pf_v_ = std::numeric_limits<double>::quiet_NaN();
    pf_b_ = 0;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void clear() {
    for (Bucket& m : buckets_) m.len = 0;
    std::fill(live_.begin(), live_.end(), uint64_t{0});
    std::fill(summary_.begin(), summary_.end(), uint64_t{0});
    size_ = 0;
    cur_ = 0;
  }

  /// v_c of the smallest (v, seq) entry; queue must be non-empty. Served
  /// from a header-resident cache: the dispatcher's SP scan reads both
  /// queues' minima on every pop, and the waiting queue's bucket lines
  /// are usually cold between swaps.
  CValue MinValue() const { return min_.v; }

  /// Payload slot of the smallest (v, seq) entry; queue must be non-empty.
  uint32_t MinSlot() const { return min_.slot; }

  /// Starts pulling in the bucket Push(v, ...) will land in. Callers
  /// issue it a few dozen cycles before Push (the dispatcher does, under
  /// the payload copy into the slot pool): the metadata reads hit L1, and
  /// the entry line — the one likely miss — overlaps the copy.
  CSFC_HOT void PrefetchFor(CValue v) const {
    const uint32_t b = BucketOf(v);
    // No dependent loads: the reserve's slab position is pure arithmetic,
    // so the bucket record's line and the full reserve (4 lines) all
    // start pulling immediately — a record load here would serialize the
    // entry prefetches behind its own possible miss. Buckets grown past
    // the reserve prefetch a stale region (harmless); their Push still
    // gets the record line early.
    __builtin_prefetch(&buckets_[b]);
    const Entry* h = slab_.get() + size_t{b} * kBucketReserve;
    __builtin_prefetch(h + 0, 1);
    __builtin_prefetch(h + 4, 1);
    __builtin_prefetch(h + 8, 1);
    __builtin_prefetch(h + 12, 1);
    // Remember the mapping: the Push this call fronts skips its own
    // quantize + divide (the hint is invalidated by Configure and only
    // ever used on an exact v match, so it can never be wrong).
    pf_v_ = v;
    pf_b_ = b;
  }

  CSFC_HOT void Push(QueueKey key, uint32_t slot) {
    const uint32_t b = key.v == pf_v_ ? pf_b_ : BucketOf(key.v);
    const Entry e{key.v, static_cast<uint32_t>(key.seq), slot};
    PlaceEntry(e, b);
    // A new arrival ties on v only with older entries (its seq is larger),
    // so strict key comparison is the right min-cache update.
    if (size_ == 0 || b < cur_) cur_ = b;
    if (size_ == 0 || Less(e, min_)) min_ = e;
    ++size_;
  }

  /// Removes and returns the minimum entry; queue must be non-empty. The
  /// cursor only ever advances (the sweep direction): entries below it
  /// are gone by the calendar invariant, so the next minimum is found by
  /// a forward bitmap scan from the current range, never a restart.
  CSFC_HOT Entry PopMin() {
    Bucket& m = buckets_[cur_];
    // min_ == the run tail m.data[m.len - 1] by invariant; serving from
    // the header-resident cache keeps the dependent tail load off the
    // return path. Popping a descending run is a truncation: no
    // compares, no entry movement.
    const Entry top = min_;
    --m.len;
    --size_;
    if (m.len != 0) {
      min_ = m.data[m.len - 1];
    } else {
      MarkDead(cur_);
      if (size_ != 0) {
        cur_ = FindNonEmptyFrom(cur_ + 1);
        const Bucket& c = buckets_[cur_];
        min_ = c.data[c.len - 1];
        // The bucket after this one becomes cur_ in ~occupancy pops —
        // start pulling its tail line now, while this bucket drains.
        const uint32_t nxt = FindNonEmptyFrom(cur_ + 1);
        if (nxt != kNoBucket) {
          const Bucket& nx = buckets_[nxt];
          __builtin_prefetch(nx.data + (nx.len - 1));
        }
      }
    }
    return top;
  }

  /// Moves every entry with v < threshold into `dst` (same Configure
  /// geometry), preserving (v, seq) identity; returns the count moved.
  /// This is the dispatcher's SP promotion in calendar terms: the
  /// destination (the active queue) holds nothing below its served
  /// minimum, so every source bucket strictly below the threshold's
  /// range lands in an empty destination bucket and moves as an O(1)
  /// run-record exchange — only the boundary range pays a binary search
  /// and one block copy of its promoted suffix, which appends cleanly
  /// because everything already in that destination bucket is >= the
  /// served minimum > threshold > every promoted entry.
  CSFC_HOT size_t DrainBelowInto(CValue threshold, BucketedSlotHeap& dst) {
    assert(dst.num_buckets_ == num_buckets_);
    const uint32_t bt = BucketOf(threshold);
    size_t moved = 0;
    uint32_t first_dst = kNoBucket;
    // cur_ is the lowest non-empty bucket whenever the queue is
    // non-empty, so the walk starts there, not at the bitmap's origin.
    uint32_t b = size_ != 0 ? cur_ : kNoBucket;
    for (; b != kNoBucket && b < bt; b = FindNonEmptyFrom(b + 1)) {
      // bucket(v) < bucket(threshold) implies v < threshold (monotone
      // mapping): the whole run moves. Runs that fit the destination's
      // array are block-copied into it (a line or two; keeps each
      // queue's reserves in its own slab, which PrefetchFor's arithmetic
      // relies on); oversized runs exchange records and ownership.
      Bucket& src = buckets_[b];
      Bucket& d = dst.buckets_[b];
      assert(d.len == 0);
      moved += src.len;
      if (src.len <= d.cap) {
        std::memcpy(d.data, src.data, size_t{src.len} * sizeof(Entry));
        d.len = src.len;
        src.len = 0;
      } else {
        std::swap(src, d);
        storage_[b].swap(dst.storage_[b]);
      }
      dst.MarkLive(b);
      MarkDead(b);
      if (first_dst == kNoBucket) first_dst = b;
    }
    if (b == bt && buckets_[bt].len != 0) {
      // Boundary range: the promoted entries (v < threshold) are a
      // suffix of the descending run. k = first index with v <
      // threshold.
      Bucket& src = buckets_[bt];
      const Entry* base = src.data;
      uint32_t n = src.len;
      while (n > 1) {
        const uint32_t half = n / 2;
        base = (base[half - 1].v < threshold) ? base : base + half;
        n -= half;
      }
      const uint32_t k = static_cast<uint32_t>(base - src.data) +
                         ((base->v < threshold) ? 0u : 1u);
      const uint32_t cnt = src.len - k;
      if (cnt != 0) {
        while (dst.buckets_[bt].len + cnt > dst.buckets_[bt].cap) {
          dst.GrowBucket(bt);
        }
        Bucket& d = dst.buckets_[bt];
        std::memcpy(d.data + d.len, src.data + k,
                    size_t{cnt} * sizeof(Entry));
        if (d.len == 0) dst.MarkLive(bt);
        d.len += cnt;
        src.len = k;
        if (k == 0) MarkDead(bt);
        moved += cnt;
        if (first_dst == kNoBucket) first_dst = bt;
      }
    }
    if (moved != 0) {
      size_ -= moved;
      dst.size_ += moved;
      if (size_ != 0) {
        // Everything below the boundary range left; bucket bt itself may
        // retain a prefix.
        cur_ = FindNonEmptyFrom(bt);
        const Bucket& c = buckets_[cur_];
        min_ = c.data[c.len - 1];
      }
      // Everything moved sits below the destination's old minimum (if it
      // had one), so its new cursor is the lowest bucket that received.
      dst.cur_ = first_dst;
      const Bucket& dc = dst.buckets_[first_dst];
      dst.min_ = dc.data[dc.len - 1];
    }
    return moved;
  }

  /// Recomputes every entry's v_c from its slot (sequence numbers are
  /// preserved); callable invoked exactly once per entry, in unspecified
  /// order. Per-bucket sweep, not a global rebuild: see RekeyImpl.
  template <typename ValueOfSlot>
  CSFC_HOT void Rekey(ValueOfSlot&& value_of_slot) {
    RekeyImpl([&](const Entry& e) { return value_of_slot(e.slot); });
  }

  /// Batch form of Rekey: values[i] becomes the v_c of the i-th entry in
  /// ForEachEntrySlot order (sequence numbers are preserved).
  CSFC_HOT void AssignKeys(std::span<const CValue> values) {
    assert(values.size() == size_);
    size_t i = 0;
    RekeyImpl([&](const Entry&) { return values[i++]; });
  }

  /// Visits every entry's slot in a fixed traversal order (non-empty
  /// buckets ascending, run-array order within a bucket) — the order
  /// AssignKeys consumes values in. Pairs with AssignKeys the way
  /// SlotHeap::entries() pairs with its AssignKeys.
  template <typename Fn>
  void ForEachEntrySlot(Fn&& fn) const {
    for (uint32_t b = FindNonEmptyFrom(0); b != kNoBucket;
         b = FindNonEmptyFrom(b + 1)) {
      const Bucket& m = buckets_[b];
      for (uint32_t i = 0; i < m.len; ++i) fn(m.data[i].slot);
    }
  }

  /// Visits all slots in ascending (v_c, seq) order (metric walks; cold).
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    scratch_.clear();
    for (uint32_t b = FindNonEmptyFrom(0); b != kNoBucket;
         b = FindNonEmptyFrom(b + 1)) {
      const Bucket& m = buckets_[b];
      scratch_.insert(scratch_.end(), m.data, m.data + m.len);  // csfc:alloc-ok(sort scratch reused across walks)
    }
    std::sort(scratch_.begin(), scratch_.end(), Less);
    for (const Entry& e : scratch_) fn(e.slot);
  }

  friend void swap(BucketedSlotHeap& a, BucketedSlotHeap& b) {
    a.buckets_.swap(b.buckets_);
    a.slab_.swap(b.slab_);
    a.storage_.swap(b.storage_);
    a.live_.swap(b.live_);
    a.summary_.swap(b.summary_);
    a.scratch_.swap(b.scratch_);
    a.migrate_.swap(b.migrate_);
    std::swap(a.min_, b.min_);
    std::swap(a.size_, b.size_);
    std::swap(a.cur_, b.cur_);
    std::swap(a.num_buckets_, b.num_buckets_);
    std::swap(a.per_bucket_, b.per_bucket_);
    std::swap(a.magic_, b.magic_);
  }

 private:
  static constexpr uint32_t kGridBits = 16;
  static constexpr uint32_t kGridCells = 1u << kGridBits;
  static constexpr uint32_t kBucketReserve = 16;
  /// Longest run the insert seats by scan-and-shift; beyond this, binary
  /// search + bulk memmove wins.
  static constexpr uint32_t kScanInsertMax = 32;
  static constexpr uint32_t kNoBucket = ~uint32_t{0};

  /// One calendar range: the run pointer and its occupancy, packed in 16
  /// bytes so a queue op touches exactly one random metadata line (a
  /// split len-array / pointer-array layout pays two; the pair outgrows
  /// L1 at the default geometry). (An unordered scan-bucket mode for low
  /// occupancy was tried here and lost to ordered buckets at every
  /// depth: a min scan pays ~2 data-dependent, poorly-predicted double
  /// compares per resident entry, while ordered buckets pop with none.)
  struct Bucket {
    Entry* data = nullptr;
    uint32_t len = 0;
    uint32_t cap = 0;
  };

  struct Migrant {
    Entry entry;
    uint32_t bucket = 0;
  };

  /// Bucket index of v: quantize onto the 2^16 grid (monotone, clamped to
  /// [0, 1)), then divide by the cells-per-bucket width with the exact
  /// multiply-shift. Monotone non-decreasing in v and equal-v stable, so
  /// cross-bucket order agrees with QueueKey order.
  CSFC_HOT uint32_t BucketOf(CValue v) const {
    const uint32_t cell = QuantizeUnit(v, kGridCells);
    return static_cast<uint32_t>((uint64_t{cell} * magic_) >> 32);
  }

  void MarkLive(uint32_t b) {
    live_[b >> 6] |= uint64_t{1} << (b & 63u);
    summary_[b >> 12] |= uint64_t{1} << ((b >> 6) & 63u);
  }

  void MarkDead(uint32_t b) {
    const uint32_t w = b >> 6;
    live_[w] &= ~(uint64_t{1} << (b & 63u));
    if (live_[w] == 0) summary_[b >> 12] &= ~(uint64_t{1} << (w & 63u));
  }

  /// Lowest non-empty bucket index >= from, or kNoBucket. Masked word
  /// probe first (the common case: the next occupied range is near), then
  /// a summary-guided scan — worst case a handful of word tests even at
  /// kMaxBuckets.
  uint32_t FindNonEmptyFrom(uint32_t from) const {
    const uint32_t num_words = static_cast<uint32_t>(live_.size());
    uint32_t w = from >> 6;
    if (w >= num_words) return kNoBucket;
    const uint64_t first = live_[w] & (~uint64_t{0} << (from & 63u));
    if (first != 0) {
      return (w << 6) | static_cast<uint32_t>(__builtin_ctzll(first));
    }
    ++w;
    const uint32_t num_summary = static_cast<uint32_t>(summary_.size());
    for (uint32_t s = w >> 6; s < num_summary; ++s) {
      uint64_t mask = summary_[s];
      if (s == (w >> 6)) mask &= ~uint64_t{0} << (w & 63u);
      if (mask == 0) continue;
      const uint32_t word =
          (s << 6) | static_cast<uint32_t>(__builtin_ctzll(mask));
      return (word << 6) |
             static_cast<uint32_t>(__builtin_ctzll(live_[word]));
    }
    return kNoBucket;
  }

  /// Doubles one bucket's entry array. Cold: only adversarial single-range
  /// workloads outgrow the Configure-time reserve, and capacity is sticky
  /// afterwards.
  void GrowBucket(uint32_t b) {
    Bucket& m = buckets_[b];
    const uint32_t new_cap = m.cap * 2;
    auto grown = std::make_unique<Entry[]>(new_cap);  // csfc:alloc-ok(cold bucket growth on skewed workloads; the reserve covers the steady state)
    std::copy_n(m.data, m.len, grown.get());
    m.data = grown.get();
    storage_[b] = std::move(grown);
    m.cap = new_cap;
  }

  /// Seats an entry in bucket b (Push and rekey pass 2); the caller owns
  /// the size_/cursor/min-cache bookkeeping, this owns MarkLive. The run
  /// is kept descending. At steady-state occupancy (a few entries to a
  /// few dozen) the insert is a fused scan-and-shift from the tail —
  /// line-local, fully pipelined, one mispredict at the stop point —
  /// which beats a binary search (a serialized load+select chain) plus a
  /// small memmove (libc dispatch overhead dominates at these sizes).
  /// Long runs (deep queues pooled in few ranges) switch to exactly
  /// that: the search is O(log n) and the bulk memmove runs at full
  /// width.
  CSFC_HOT void PlaceEntry(const Entry& e, uint32_t b) {
    if (buckets_[b].len == buckets_[b].cap) GrowBucket(b);
    Bucket& m = buckets_[b];
    Entry* h = m.data;
    if (m.len == 0) MarkLive(b);
    uint32_t lo = m.len;
    if (m.len > kScanInsertMax) {
      // Partition point: keys above it are > e, below it < e (keys are
      // unique (v, seq) pairs, so never equal).
      const Entry* base = h;
      uint32_t n = m.len;
      while (n > 1) {
        const uint32_t half = n / 2;
        base = Less(base[half - 1], e) ? base : base + half;
        n -= half;
      }
      lo = static_cast<uint32_t>(base - h) + (Less(*base, e) ? 0u : 1u);
      std::memmove(h + lo + 1, h + lo, (m.len - lo) * sizeof(Entry));
    } else {
      while (lo > 0 && Less(h[lo - 1], e)) {
        h[lo] = h[lo - 1];
        --lo;
      }
    }
    h[lo] = e;
    ++m.len;
  }

  /// Rewrites every key (key_of_entry maps an entry, read pre-rekey and
  /// in ForEachEntrySlot traversal order, to its new v_c) and restores
  /// calendar order in a per-bucket sweep. A rekey against a new head
  /// position moves most entries within their own v_c range, so pass 1
  /// rewrites and compacts stayers in place and re-sorts each short run
  /// — the few boundary-crossers land on a migration scratch list that
  /// pass 2 reseats. Entries are read strictly in traversal order before
  /// any write lands at or below their index, so the fused
  /// rewrite/compact pass is sound the same way SlotHeap's backward
  /// Floyd fusion is.
  template <typename KeyOfEntry>
  CSFC_HOT void RekeyImpl(KeyOfEntry&& key_of_entry) {
    migrate_.clear();
    for (uint32_t b = FindNonEmptyFrom(0); b != kNoBucket;
         b = FindNonEmptyFrom(b + 1)) {
      Bucket& m = buckets_[b];
      Entry* h = m.data;
      const uint32_t n = m.len;
      uint32_t keep = 0;
      for (uint32_t i = 0; i < n; ++i) {
        Entry e = h[i];
        e.v = key_of_entry(h[i]);
        const uint32_t nb = BucketOf(e.v);
        if (nb == b) {
          h[keep++] = e;
        } else {
          migrate_.push_back(Migrant{e, nb});  // csfc:alloc-ok(migration scratch reused across rekeys)
        }
      }
      m.len = keep;
      if (keep == 0) {
        MarkDead(b);
        continue;
      }
      std::sort(h, h + keep,
                [](const Entry& a, const Entry& b2) { return Less(b2, a); });
    }
    for (const Migrant& m : migrate_) PlaceEntry(m.entry, m.bucket);
    if (size_ != 0) {
      cur_ = FindNonEmptyFrom(0);
      const Bucket& c = buckets_[cur_];
      min_ = c.data[c.len - 1];
    }
  }

  /// Deep copy for the debug-build shadow-dispatcher clone (cold).
  void CopyFrom(const BucketedSlotHeap& o) {
    buckets_ = o.buckets_;
    live_ = o.live_;
    summary_ = o.summary_;
    migrate_ = o.migrate_;
    min_ = o.min_;
    size_ = o.size_;
    cur_ = o.cur_;
    num_buckets_ = o.num_buckets_;
    per_bucket_ = o.per_bucket_;
    magic_ = o.magic_;
    slab_ = std::make_unique<Entry[]>(size_t{num_buckets_} * kBucketReserve);
    storage_.clear();
    storage_.resize(buckets_.size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      Bucket& m = buckets_[b];
      if (o.storage_[b] != nullptr) {
        storage_[b] = std::make_unique<Entry[]>(m.cap);
        m.data = storage_[b].get();
      } else {
        m.data = slab_.get() + b * kBucketReserve;
      }
      std::copy_n(o.buckets_[b].data, m.len, m.data);
    }
    // scratch_ is meaningless between calls; leave the copy's empty.
  }

  /// One 16-byte Bucket record per range, in one dense array (16KB at
  /// the default geometry). buckets_[b].data points into slab_
  /// (bucket-ordered reserves, sequential for the drain sweep) until
  /// bucket b outgrows its reserve, after which it points at
  /// storage_[b].
  std::vector<Bucket> buckets_;
  std::unique_ptr<Entry[]> slab_;
  std::vector<std::unique_ptr<Entry[]>> storage_;
  /// Two-level occupancy bitmap: bit b of live_ set iff bucket b is
  /// non-empty; bit w of summary_ set iff live_[w] != 0.
  std::vector<uint64_t> live_;
  std::vector<uint64_t> summary_;
  /// ForEachOrdered's sort buffer (scratch only, like SlotHeap's).
  mutable std::vector<Entry> scratch_;
  /// Rekey pass-2 list of entries that crossed a range boundary.
  std::vector<Migrant> migrate_;
  /// PrefetchFor's (v -> bucket) hint for the Push it fronts; NaN until
  /// the first prefetch and after Configure, so a miss just recomputes.
  mutable CValue pf_v_ = std::numeric_limits<double>::quiet_NaN();
  mutable uint32_t pf_b_ = 0;
  /// Cached copy of the minimum entry (meaningful iff size_ > 0); always
  /// equal to the current bucket's run tail,
  /// buckets_[cur_].data[buckets_[cur_].len - 1].
  Entry min_{};
  size_t size_ = 0;
  /// Index of the lowest non-empty bucket (meaningful iff size_ > 0).
  uint32_t cur_ = 0;
  uint32_t num_buckets_ = 0;
  uint32_t per_bucket_ = 0;
  uint64_t magic_ = 0;
};

static_assert(sizeof(BucketedSlotHeap::Entry) == 16,
              "calendar Entry must pack four nodes per 64-byte line");
static_assert(std::is_trivially_copyable_v<BucketedSlotHeap::Entry>,
              "BucketedSlotHeap::Entry must stay trivially copyable");

/// Backend-selecting facade the dispatcher's q / q' queues go through:
/// one monolithic SlotHeap (kFlat, the default) or a BucketedSlotHeap
/// calendar (kCalendar). One predictable branch per op; both members are
/// empty-cheap, so the unused backend costs a few idle vectors.
class DispatchQueue {
 public:
  /// (key, slot) currency of the dispatcher, regardless of backend.
  using Entry = SlotHeap::Entry;

  /// Switches this queue to the calendar backend (call once, while
  /// empty, before any queue op — the Dispatcher constructor does).
  void ConfigureCalendar(uint32_t num_buckets) {
    backend_ = QueueBackend::kCalendar;
    calendar_.Configure(num_buckets);
  }

  QueueBackend backend() const { return backend_; }

  bool empty() const { return size() == 0; }
  size_t size() const {
    return backend_ == QueueBackend::kFlat ? flat_.size() : calendar_.size();
  }
  void clear() {
    flat_.clear();
    calendar_.clear();
  }

  /// v_c of the smallest (v, seq) entry; queue must be non-empty. (Only
  /// the value is exposed: the calendar backend caches it header-resident,
  /// and no caller needs the tie-break sequence of a peeked minimum.)
  CValue MinValue() const {
    return backend_ == QueueBackend::kFlat ? flat_.Min().key.v
                                           : calendar_.MinValue();
  }

  /// Payload slot of the smallest (v, seq) entry; queue must be
  /// non-empty. The dispatcher prefetches this slot's payload one
  /// insert+pop cycle before the pop that moves it out.
  uint32_t MinSlot() const {
    return backend_ == QueueBackend::kFlat ? flat_.Min().slot
                                           : calendar_.MinSlot();
  }

  /// Starts pulling in the queue lines Push(v, ...) will touch; issued by
  /// the dispatcher under the payload copy into the slot pool.
  CSFC_HOT void PrefetchFor(CValue v) const {
    if (backend_ == QueueBackend::kFlat) {
      flat_.PrefetchFor(v);
    } else {
      calendar_.PrefetchFor(v);
    }
  }

  CSFC_HOT void Push(QueueKey key, uint32_t slot) {
    if (backend_ == QueueBackend::kFlat) {
      flat_.Push(key, slot);
    } else {
      calendar_.Push(key, slot);
    }
  }

  CSFC_HOT Entry PopMin() {
    if (backend_ == QueueBackend::kFlat) return flat_.PopMin();
    const BucketedSlotHeap::Entry e = calendar_.PopMin();
    // The zero-extended 32-bit sequence keeps FIFO ties exact on the SP
    // re-push path: the promoted entry re-enters a queue of this same
    // backend, where every compare is wrap-aware 32-bit anyway.
    return Entry{QueueKey{e.v, e.seq}, e.slot};
  }

  /// Bulk SP promotion (calendar backends only; both queues share one
  /// geometry): moves every entry with v < threshold into `dst` and
  /// returns the count — state-identical to a PopMin/Push loop over
  /// those entries, minus the per-entry cost (see
  /// BucketedSlotHeap::DrainBelowInto).
  CSFC_HOT size_t PromoteBelow(CValue threshold, DispatchQueue& dst) {
    assert(backend_ == QueueBackend::kCalendar &&
           dst.backend_ == QueueBackend::kCalendar);
    return calendar_.DrainBelowInto(threshold, dst.calendar_);
  }

  template <typename ValueOfSlot>
  CSFC_HOT void Rekey(ValueOfSlot&& value_of_slot) {
    if (backend_ == QueueBackend::kFlat) {
      flat_.Rekey(std::forward<ValueOfSlot>(value_of_slot));
    } else {
      calendar_.Rekey(std::forward<ValueOfSlot>(value_of_slot));
    }
  }

  /// Batch rekey: values[i] is consumed in ForEachEntrySlot order for
  /// either backend.
  CSFC_HOT void AssignKeys(std::span<const CValue> values) {
    if (backend_ == QueueBackend::kFlat) {
      flat_.AssignKeys(values);
    } else {
      calendar_.AssignKeys(values);
    }
  }

  /// Visits every entry's slot in the backend's AssignKeys consumption
  /// order (flat: entries() array order; calendar: non-empty buckets
  /// ascending, heap-array order within).
  template <typename Fn>
  void ForEachEntrySlot(Fn&& fn) const {
    if (backend_ == QueueBackend::kFlat) {
      for (const Entry& e : flat_.entries()) fn(e.slot);
    } else {
      calendar_.ForEachEntrySlot(std::forward<Fn>(fn));
    }
  }

  /// Visits all slots in ascending (v_c, seq) order.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    if (backend_ == QueueBackend::kFlat) {
      flat_.ForEachOrdered(std::forward<Fn>(fn));
    } else {
      calendar_.ForEachOrdered(std::forward<Fn>(fn));
    }
  }

  /// Queue-swap support: both queues of a dispatcher share one backend
  /// and calendar geometry, so this is a pointer-level exchange.
  friend void swap(DispatchQueue& a, DispatchQueue& b) {
    std::swap(a.backend_, b.backend_);
    swap(a.flat_, b.flat_);
    swap(a.calendar_, b.calendar_);
  }

 private:
  QueueBackend backend_ = QueueBackend::kFlat;
  SlotHeap flat_;
  BucketedSlotHeap calendar_;
};

}  // namespace csfc

#endif  // CSFC_CORE_FLAT_QUEUE_H_
