// Simulation metrics: everything Section 5/6 plots.
//
//  * Priority inversion (Section 5.1): at each dispatch, for each QoS
//    dimension k, the number of still-waiting requests whose level on k is
//    strictly more important than the dispatched request's. Experiments
//    report totals as a percentage of the FIFO discipline's count on the
//    same workload (normalization happens in the experiment harness).
//  * Deadline misses, overall and per (dimension, level) — Figures 8-10
//    plus the selectivity breakdown of Figure 9.
//  * Seek-time and service accounting — Figure 10c.
//  * The Section-6 weighted loss cost: sum over levels of w_i * m_i / r_i
//    with weights decreasing linearly so the top level costs `hi_weight`
//    times the bottom one.

#ifndef CSFC_STATS_METRICS_H_
#define CSFC_STATS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/tracer.h"
#include "sched/scheduler.h"
#include "workload/request.h"

namespace csfc {

/// Shape of the QoS metric space — the one description of how many
/// dimensions and levels the metrics layer tracks, consumed by both
/// SimulatorConfig and MetricsCollector (previously duplicated as
/// SimulatorConfig.metric_dims/metric_levels + MetricsCollector(dims,
/// levels) arguments).
struct MetricsConfig {
  /// QoS dimensions tracked (paper maximum: 12).
  uint32_t dims = 3;
  /// Priority levels per dimension.
  uint32_t levels = 16;

  Status Validate() const;
};

/// Aggregated results of one simulation run.
struct RunMetrics {
  uint64_t arrivals = 0;
  uint64_t completions = 0;

  /// Priority inversions per QoS dimension (see header comment).
  std::vector<uint64_t> inversions_per_dim;
  uint64_t total_inversions() const;
  /// Population stddev of the per-dimension inversion counts (fairness
  /// metric of Figure 7a).
  double inversion_stddev() const;
  /// Smallest per-dimension inversion count (the "most favored dimension"
  /// of Figure 7b).
  uint64_t min_dim_inversions() const;

  /// Requests with deadlines that completed after them.
  uint64_t deadline_misses = 0;
  /// Requests that carried deadlines.
  uint64_t deadline_total = 0;
  /// misses_per_dim_level[k][l]: misses among requests at level l of
  /// dimension k. totals_per_dim_level mirrors it with totals.
  std::vector<std::vector<uint64_t>> misses_per_dim_level;
  std::vector<std::vector<uint64_t>> totals_per_dim_level;

  double total_seek_ms = 0.0;
  double total_service_ms = 0.0;
  /// Mean seek per served request.
  double mean_seek_ms() const;

  /// Completion - arrival, per request.
  RunningStat response_ms;
  /// Response-time statistics broken down by dimension-0 priority level
  /// (empty when no dimensions are tracked). The per-level max is the
  /// starvation indicator the ER policy exists to bound: a fully
  /// preemptive dispatcher lets the low levels' max grow without bound.
  std::vector<RunningStat> response_per_level;
  /// Simulated time at the last completion.
  SimTime makespan = 0;

  /// Section-6 weighted loss cost over dimension `dim`: weights fall
  /// linearly from hi_weight (level 0) to lo_weight (last level).
  double WeightedLossCost(size_t dim = 0, double hi_weight = 11.0,
                          double lo_weight = 1.0) const;

  /// Full metric set as one JSON object (the export schema every bench
  /// and tool emits; see DESIGN.md section 10).
  std::string ToJson() const;
};

/// Collects RunMetrics during a simulation. The simulator drives it; tests
/// may drive it directly. When a tracer is attached it also emits the
/// arrival / dispatch / completion / deadline-miss lifecycle events.
class MetricsCollector {
 public:
  /// `config.dims` QoS dimensions with `config.levels` levels each are
  /// tracked; requests with fewer dimensions contribute to the dimensions
  /// they have.
  explicit MetricsCollector(const MetricsConfig& config);

  /// Attaches the tracer lifecycle events are emitted through (may be
  /// null / disabled; must outlive the collector's On* calls).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  void OnArrival(const Request& r);

  /// Called after `r` was removed from the scheduler queue, with the
  /// scheduler still holding the remaining waiting requests.
  void OnDispatch(const Request& r, const Scheduler& sched);

  /// Called when service finishes. `seek_ms`/`service_ms` are that
  /// request's contributions.
  void OnCompletion(const Request& r, SimTime finish_time, double seek_ms,
                    double service_ms);

  const RunMetrics& metrics() const { return metrics_; }
  RunMetrics TakeMetrics() { return std::move(metrics_); }

 private:
  uint32_t dims_;
  uint32_t levels_;
  RunMetrics metrics_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace csfc

#endif  // CSFC_STATS_METRICS_H_
