#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace csfc {

uint64_t RunMetrics::total_inversions() const {
  uint64_t total = 0;
  for (uint64_t v : inversions_per_dim) total += v;
  return total;
}

double RunMetrics::inversion_stddev() const {
  if (inversions_per_dim.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t v : inversions_per_dim) mean += static_cast<double>(v);
  mean /= static_cast<double>(inversions_per_dim.size());
  double var = 0.0;
  for (uint64_t v : inversions_per_dim) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(inversions_per_dim.size());
  return std::sqrt(var);
}

uint64_t RunMetrics::min_dim_inversions() const {
  if (inversions_per_dim.empty()) return 0;
  return *std::min_element(inversions_per_dim.begin(),
                           inversions_per_dim.end());
}

double RunMetrics::mean_seek_ms() const {
  return completions == 0 ? 0.0
                          : total_seek_ms / static_cast<double>(completions);
}

double RunMetrics::WeightedLossCost(size_t dim, double hi_weight,
                                    double lo_weight) const {
  if (dim >= misses_per_dim_level.size()) return 0.0;
  const auto& misses = misses_per_dim_level[dim];
  const auto& totals = totals_per_dim_level[dim];
  const size_t levels = misses.size();
  double cost = 0.0;
  for (size_t l = 0; l < levels; ++l) {
    if (totals[l] == 0) continue;
    const double frac =
        levels > 1 ? static_cast<double>(l) / static_cast<double>(levels - 1)
                   : 0.0;
    const double w = hi_weight + frac * (lo_weight - hi_weight);
    cost += w * static_cast<double>(misses[l]) / static_cast<double>(totals[l]);
  }
  return cost;
}

MetricsCollector::MetricsCollector(uint32_t dims, uint32_t levels)
    : dims_(dims), levels_(std::max(levels, 1u)) {
  metrics_.inversions_per_dim.assign(dims_, 0);
  metrics_.misses_per_dim_level.assign(
      dims_, std::vector<uint64_t>(levels_, 0));
  metrics_.totals_per_dim_level.assign(
      dims_, std::vector<uint64_t>(levels_, 0));
  if (dims_ > 0) metrics_.response_per_level.resize(levels_);
}

void MetricsCollector::OnArrival(const Request&) { ++metrics_.arrivals; }

void MetricsCollector::OnDispatch(const Request& r, const Scheduler& sched) {
  if (dims_ == 0) return;
  sched.ForEachWaiting([&](const Request& w) {
    const size_t dims = std::min<size_t>(dims_, w.priorities.size());
    for (size_t k = 0; k < dims; ++k) {
      // Waiting request more important (smaller level) than the dispatched
      // one on dimension k: one inversion.
      if (w.priorities[k] < r.priority(k)) ++metrics_.inversions_per_dim[k];
    }
  });
}

void MetricsCollector::OnCompletion(const Request& r, SimTime finish_time,
                                    double seek_ms, double service_ms) {
  ++metrics_.completions;
  metrics_.total_seek_ms += seek_ms;
  metrics_.total_service_ms += service_ms;
  const double response = SimToMs(finish_time - r.arrival);
  metrics_.response_ms.Add(response);
  if (dims_ > 0 && !r.priorities.empty()) {
    const size_t level = std::min<size_t>(r.priorities[0], levels_ - 1);
    metrics_.response_per_level[level].Add(response);
  }
  metrics_.makespan = std::max(metrics_.makespan, finish_time);
  if (r.has_deadline()) {
    ++metrics_.deadline_total;
    const bool missed = finish_time > r.deadline;
    if (missed) ++metrics_.deadline_misses;
    const size_t dims = std::min<size_t>(dims_, r.priorities.size());
    for (size_t k = 0; k < dims; ++k) {
      const size_t level = std::min<size_t>(r.priorities[k], levels_ - 1);
      ++metrics_.totals_per_dim_level[k][level];
      if (missed) ++metrics_.misses_per_dim_level[k][level];
    }
  }
}

}  // namespace csfc
