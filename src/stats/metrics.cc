#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace csfc {

Status MetricsConfig::Validate() const {
  if (dims > 12) {
    return Status::InvalidArgument("metrics dims must be <= 12");
  }
  return Status::OK();
}

uint64_t RunMetrics::total_inversions() const {
  uint64_t total = 0;
  for (uint64_t v : inversions_per_dim) total += v;
  return total;
}

double RunMetrics::inversion_stddev() const {
  if (inversions_per_dim.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t v : inversions_per_dim) mean += static_cast<double>(v);
  mean /= static_cast<double>(inversions_per_dim.size());
  double var = 0.0;
  for (uint64_t v : inversions_per_dim) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(inversions_per_dim.size());
  return std::sqrt(var);
}

uint64_t RunMetrics::min_dim_inversions() const {
  if (inversions_per_dim.empty()) return 0;
  return *std::min_element(inversions_per_dim.begin(),
                           inversions_per_dim.end());
}

double RunMetrics::mean_seek_ms() const {
  return completions == 0 ? 0.0
                          : total_seek_ms / static_cast<double>(completions);
}

double RunMetrics::WeightedLossCost(size_t dim, double hi_weight,
                                    double lo_weight) const {
  if (dim >= misses_per_dim_level.size()) return 0.0;
  const auto& misses = misses_per_dim_level[dim];
  const auto& totals = totals_per_dim_level[dim];
  const size_t levels = misses.size();
  double cost = 0.0;
  for (size_t l = 0; l < levels; ++l) {
    if (totals[l] == 0) continue;
    const double frac =
        levels > 1 ? static_cast<double>(l) / static_cast<double>(levels - 1)
                   : 0.0;
    const double w = hi_weight + frac * (lo_weight - hi_weight);
    cost += w * static_cast<double>(misses[l]) / static_cast<double>(totals[l]);
  }
  return cost;
}

std::string RunMetrics::ToJson() const {
  obs::JsonWriter w;
  const auto stat = [&w](const char* key, const RunningStat& s) {
    w.Key(key).BeginObject();
    w.Field("count", s.count());
    w.Field("mean", s.mean());
    w.Field("stddev", s.stddev());
    w.Field("min", s.min());
    w.Field("max", s.max());
    w.EndObject();
  };
  w.BeginObject();
  w.Field("arrivals", arrivals);
  w.Field("completions", completions);
  w.Field("makespan_ms", SimToMs(makespan));
  stat("response_ms", response_ms);
  w.Key("response_per_level").BeginArray();
  for (const RunningStat& s : response_per_level) {
    w.BeginObject();
    w.Field("count", s.count());
    w.Field("mean", s.mean());
    w.Field("max", s.max());
    w.EndObject();
  }
  w.EndArray();
  w.Key("inversions_per_dim").BeginArray();
  for (uint64_t v : inversions_per_dim) w.Value(v);
  w.EndArray();
  w.Field("total_inversions", total_inversions());
  w.Field("inversion_stddev", inversion_stddev());
  w.Key("deadline").BeginObject();
  w.Field("misses", deadline_misses);
  w.Field("total", deadline_total);
  w.Field("miss_rate", deadline_total == 0
                           ? 0.0
                           : static_cast<double>(deadline_misses) /
                                 static_cast<double>(deadline_total));
  w.EndObject();
  const auto grid = [&w](const char* key,
                         const std::vector<std::vector<uint64_t>>& g) {
    w.Key(key).BeginArray();
    for (const std::vector<uint64_t>& dim : g) {
      w.BeginArray();
      for (uint64_t v : dim) w.Value(v);
      w.EndArray();
    }
    w.EndArray();
  };
  grid("misses_per_dim_level", misses_per_dim_level);
  grid("totals_per_dim_level", totals_per_dim_level);
  w.Key("seek").BeginObject();
  w.Field("total_ms", total_seek_ms);
  w.Field("mean_ms", mean_seek_ms());
  w.EndObject();
  w.Field("service_total_ms", total_service_ms);
  w.Field("weighted_loss_cost", WeightedLossCost());
  w.EndObject();
  return w.Take();
}

MetricsCollector::MetricsCollector(const MetricsConfig& config)
    : dims_(config.dims), levels_(std::max(config.levels, 1u)) {
  metrics_.inversions_per_dim.assign(dims_, 0);
  metrics_.misses_per_dim_level.assign(
      dims_, std::vector<uint64_t>(levels_, 0));
  metrics_.totals_per_dim_level.assign(
      dims_, std::vector<uint64_t>(levels_, 0));
  if (dims_ > 0) metrics_.response_per_level.resize(levels_);
}

void MetricsCollector::OnArrival(const Request& r) {
  ++metrics_.arrivals;
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kArrival;
    e.t = r.arrival;
    e.id = r.id;
    e.cylinder = r.cylinder;
    e.level = r.priorities.empty() ? 0 : r.priorities[0];
    e.deadline = r.deadline;
    tracer_->Emit(e);
  }
}

void MetricsCollector::OnDispatch(const Request& r, const Scheduler& sched) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kDispatch;
    e.t = tracer_->now();
    e.id = r.id;
    e.cylinder = r.cylinder;
    e.level = r.priorities.empty() ? 0 : r.priorities[0];
    e.queue_depth = sched.queue_size();
    tracer_->Emit(e);
  }
  if (dims_ == 0) return;
  sched.ForEachWaiting([&](const Request& w) {
    const size_t dims = std::min<size_t>(dims_, w.priorities.size());
    for (size_t k = 0; k < dims; ++k) {
      // Waiting request more important (smaller level) than the dispatched
      // one on dimension k: one inversion.
      if (w.priorities[k] < r.priority(k)) ++metrics_.inversions_per_dim[k];
    }
  });
}

void MetricsCollector::OnCompletion(const Request& r, SimTime finish_time,
                                    double seek_ms, double service_ms) {
  ++metrics_.completions;
  metrics_.total_seek_ms += seek_ms;
  metrics_.total_service_ms += service_ms;
  const double response = SimToMs(finish_time - r.arrival);
  metrics_.response_ms.Add(response);
  if (dims_ > 0 && !r.priorities.empty()) {
    const size_t level = std::min<size_t>(r.priorities[0], levels_ - 1);
    metrics_.response_per_level[level].Add(response);
  }
  metrics_.makespan = std::max(metrics_.makespan, finish_time);
  const bool missed = r.has_deadline() && finish_time > r.deadline;
  if (r.has_deadline()) {
    ++metrics_.deadline_total;
    if (missed) ++metrics_.deadline_misses;
    const size_t dims = std::min<size_t>(dims_, r.priorities.size());
    for (size_t k = 0; k < dims; ++k) {
      const size_t level = std::min<size_t>(r.priorities[k], levels_ - 1);
      ++metrics_.totals_per_dim_level[k][level];
      if (missed) ++metrics_.misses_per_dim_level[k][level];
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kCompletion;
    e.t = finish_time;
    e.id = r.id;
    e.level = r.priorities.empty() ? 0 : r.priorities[0];
    e.seek_ms = seek_ms;
    e.service_ms = service_ms;
    e.response_ms = response;
    e.missed = missed;
    tracer_->Emit(e);
    if (missed) {
      obs::TraceEvent miss;
      miss.kind = obs::TraceEventKind::kDeadlineMiss;
      miss.t = finish_time;
      miss.id = r.id;
      tracer_->Emit(miss);
    }
  }
}

}  // namespace csfc
