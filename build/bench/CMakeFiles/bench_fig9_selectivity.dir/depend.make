# Empty dependencies file for bench_fig9_selectivity.
# This may be replaced when dependencies are built.
