file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_selectivity.dir/bench_fig9_selectivity.cc.o"
  "CMakeFiles/bench_fig9_selectivity.dir/bench_fig9_selectivity.cc.o.d"
  "bench_fig9_selectivity"
  "bench_fig9_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
