# Empty dependencies file for bench_table1_disk.
# This may be replaced when dependencies are built.
