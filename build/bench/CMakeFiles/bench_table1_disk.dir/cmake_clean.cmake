file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_disk.dir/bench_table1_disk.cc.o"
  "CMakeFiles/bench_table1_disk.dir/bench_table1_disk.cc.o.d"
  "bench_table1_disk"
  "bench_table1_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
