file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dispatcher.dir/bench_ablation_dispatcher.cc.o"
  "CMakeFiles/bench_ablation_dispatcher.dir/bench_ablation_dispatcher.cc.o.d"
  "bench_ablation_dispatcher"
  "bench_ablation_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
