# Empty dependencies file for bench_ablation_dispatcher.
# This may be replaced when dependencies are built.
