file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_editing_server.dir/bench_fig11_editing_server.cc.o"
  "CMakeFiles/bench_fig11_editing_server.dir/bench_fig11_editing_server.cc.o.d"
  "bench_fig11_editing_server"
  "bench_fig11_editing_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_editing_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
