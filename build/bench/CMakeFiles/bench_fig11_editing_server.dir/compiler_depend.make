# Empty compiler generated dependencies file for bench_fig11_editing_server.
# This may be replaced when dependencies are built.
