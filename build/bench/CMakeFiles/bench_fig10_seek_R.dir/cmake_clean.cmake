file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_seek_R.dir/bench_fig10_seek_R.cc.o"
  "CMakeFiles/bench_fig10_seek_R.dir/bench_fig10_seek_R.cc.o.d"
  "bench_fig10_seek_R"
  "bench_fig10_seek_R.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_seek_R.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
