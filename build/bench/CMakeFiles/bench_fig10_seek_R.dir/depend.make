# Empty dependencies file for bench_fig10_seek_R.
# This may be replaced when dependencies are built.
