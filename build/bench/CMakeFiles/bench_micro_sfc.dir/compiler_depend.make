# Empty compiler generated dependencies file for bench_micro_sfc.
# This may be replaced when dependencies are built.
