file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_priority_inversion.dir/bench_fig5_priority_inversion.cc.o"
  "CMakeFiles/bench_fig5_priority_inversion.dir/bench_fig5_priority_inversion.cc.o.d"
  "bench_fig5_priority_inversion"
  "bench_fig5_priority_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_priority_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
