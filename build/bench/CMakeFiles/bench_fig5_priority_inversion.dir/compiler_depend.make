# Empty compiler generated dependencies file for bench_fig5_priority_inversion.
# This may be replaced when dependencies are built.
