# Empty dependencies file for bench_fig7_fairness.
# This may be replaced when dependencies are built.
