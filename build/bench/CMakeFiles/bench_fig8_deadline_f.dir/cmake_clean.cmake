file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_deadline_f.dir/bench_fig8_deadline_f.cc.o"
  "CMakeFiles/bench_fig8_deadline_f.dir/bench_fig8_deadline_f.cc.o.d"
  "bench_fig8_deadline_f"
  "bench_fig8_deadline_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_deadline_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
