# Empty dependencies file for bench_fig8_deadline_f.
# This may be replaced when dependencies are built.
