file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sfc_combos.dir/bench_ablation_sfc_combos.cc.o"
  "CMakeFiles/bench_ablation_sfc_combos.dir/bench_ablation_sfc_combos.cc.o.d"
  "bench_ablation_sfc_combos"
  "bench_ablation_sfc_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sfc_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
