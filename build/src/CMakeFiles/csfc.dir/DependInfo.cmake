
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/csfc.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/csfc.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/csfc.dir/common/random.cc.o" "gcc" "src/CMakeFiles/csfc.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/csfc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/csfc.dir/common/status.cc.o.d"
  "/root/repo/src/core/cascaded_scheduler.cc" "src/CMakeFiles/csfc.dir/core/cascaded_scheduler.cc.o" "gcc" "src/CMakeFiles/csfc.dir/core/cascaded_scheduler.cc.o.d"
  "/root/repo/src/core/cvalue.cc" "src/CMakeFiles/csfc.dir/core/cvalue.cc.o" "gcc" "src/CMakeFiles/csfc.dir/core/cvalue.cc.o.d"
  "/root/repo/src/core/dispatcher.cc" "src/CMakeFiles/csfc.dir/core/dispatcher.cc.o" "gcc" "src/CMakeFiles/csfc.dir/core/dispatcher.cc.o.d"
  "/root/repo/src/core/encapsulator.cc" "src/CMakeFiles/csfc.dir/core/encapsulator.cc.o" "gcc" "src/CMakeFiles/csfc.dir/core/encapsulator.cc.o.d"
  "/root/repo/src/core/presets.cc" "src/CMakeFiles/csfc.dir/core/presets.cc.o" "gcc" "src/CMakeFiles/csfc.dir/core/presets.cc.o.d"
  "/root/repo/src/disk/disk_model.cc" "src/CMakeFiles/csfc.dir/disk/disk_model.cc.o" "gcc" "src/CMakeFiles/csfc.dir/disk/disk_model.cc.o.d"
  "/root/repo/src/disk/raid.cc" "src/CMakeFiles/csfc.dir/disk/raid.cc.o" "gcc" "src/CMakeFiles/csfc.dir/disk/raid.cc.o.d"
  "/root/repo/src/exp/runner.cc" "src/CMakeFiles/csfc.dir/exp/runner.cc.o" "gcc" "src/CMakeFiles/csfc.dir/exp/runner.cc.o.d"
  "/root/repo/src/exp/table.cc" "src/CMakeFiles/csfc.dir/exp/table.cc.o" "gcc" "src/CMakeFiles/csfc.dir/exp/table.cc.o.d"
  "/root/repo/src/sched/bucket.cc" "src/CMakeFiles/csfc.dir/sched/bucket.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/bucket.cc.o.d"
  "/root/repo/src/sched/dds.cc" "src/CMakeFiles/csfc.dir/sched/dds.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/dds.cc.o.d"
  "/root/repo/src/sched/edf.cc" "src/CMakeFiles/csfc.dir/sched/edf.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/edf.cc.o.d"
  "/root/repo/src/sched/extended.cc" "src/CMakeFiles/csfc.dir/sched/extended.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/extended.cc.o.d"
  "/root/repo/src/sched/fcfs.cc" "src/CMakeFiles/csfc.dir/sched/fcfs.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/fcfs.cc.o.d"
  "/root/repo/src/sched/fd_scan.cc" "src/CMakeFiles/csfc.dir/sched/fd_scan.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/fd_scan.cc.o.d"
  "/root/repo/src/sched/multi_queue.cc" "src/CMakeFiles/csfc.dir/sched/multi_queue.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/multi_queue.cc.o.d"
  "/root/repo/src/sched/registry.cc" "src/CMakeFiles/csfc.dir/sched/registry.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/registry.cc.o.d"
  "/root/repo/src/sched/scan_edf.cc" "src/CMakeFiles/csfc.dir/sched/scan_edf.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/scan_edf.cc.o.d"
  "/root/repo/src/sched/scan_family.cc" "src/CMakeFiles/csfc.dir/sched/scan_family.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/scan_family.cc.o.d"
  "/root/repo/src/sched/scan_rt.cc" "src/CMakeFiles/csfc.dir/sched/scan_rt.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/scan_rt.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/csfc.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/ssed.cc" "src/CMakeFiles/csfc.dir/sched/ssed.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/ssed.cc.o.d"
  "/root/repo/src/sched/sstf.cc" "src/CMakeFiles/csfc.dir/sched/sstf.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sched/sstf.cc.o.d"
  "/root/repo/src/sfc/cscan.cc" "src/CMakeFiles/csfc.dir/sfc/cscan.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/cscan.cc.o.d"
  "/root/repo/src/sfc/curve.cc" "src/CMakeFiles/csfc.dir/sfc/curve.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/curve.cc.o.d"
  "/root/repo/src/sfc/diagonal.cc" "src/CMakeFiles/csfc.dir/sfc/diagonal.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/diagonal.cc.o.d"
  "/root/repo/src/sfc/gray.cc" "src/CMakeFiles/csfc.dir/sfc/gray.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/gray.cc.o.d"
  "/root/repo/src/sfc/hilbert.cc" "src/CMakeFiles/csfc.dir/sfc/hilbert.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/hilbert.cc.o.d"
  "/root/repo/src/sfc/locality.cc" "src/CMakeFiles/csfc.dir/sfc/locality.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/locality.cc.o.d"
  "/root/repo/src/sfc/registry.cc" "src/CMakeFiles/csfc.dir/sfc/registry.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/registry.cc.o.d"
  "/root/repo/src/sfc/scan.cc" "src/CMakeFiles/csfc.dir/sfc/scan.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/scan.cc.o.d"
  "/root/repo/src/sfc/spiral.cc" "src/CMakeFiles/csfc.dir/sfc/spiral.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/spiral.cc.o.d"
  "/root/repo/src/sfc/zorder.cc" "src/CMakeFiles/csfc.dir/sfc/zorder.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sfc/zorder.cc.o.d"
  "/root/repo/src/sim/array.cc" "src/CMakeFiles/csfc.dir/sim/array.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sim/array.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/csfc.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/csfc.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/CMakeFiles/csfc.dir/stats/metrics.cc.o" "gcc" "src/CMakeFiles/csfc.dir/stats/metrics.cc.o.d"
  "/root/repo/src/workload/edl.cc" "src/CMakeFiles/csfc.dir/workload/edl.cc.o" "gcc" "src/CMakeFiles/csfc.dir/workload/edl.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/csfc.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/csfc.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/mpeg.cc" "src/CMakeFiles/csfc.dir/workload/mpeg.cc.o" "gcc" "src/CMakeFiles/csfc.dir/workload/mpeg.cc.o.d"
  "/root/repo/src/workload/request.cc" "src/CMakeFiles/csfc.dir/workload/request.cc.o" "gcc" "src/CMakeFiles/csfc.dir/workload/request.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/csfc.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/csfc.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
