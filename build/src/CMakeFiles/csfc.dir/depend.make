# Empty dependencies file for csfc.
# This may be replaced when dependencies are built.
