file(REMOVE_RECURSE
  "libcsfc.a"
)
