
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cascaded_test.cc" "tests/CMakeFiles/core_test.dir/core/cascaded_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cascaded_test.cc.o.d"
  "/root/repo/tests/core/cvalue_test.cc" "tests/CMakeFiles/core_test.dir/core/cvalue_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cvalue_test.cc.o.d"
  "/root/repo/tests/core/dispatcher_test.cc" "tests/CMakeFiles/core_test.dir/core/dispatcher_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dispatcher_test.cc.o.d"
  "/root/repo/tests/core/encapsulator_test.cc" "tests/CMakeFiles/core_test.dir/core/encapsulator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/encapsulator_test.cc.o.d"
  "/root/repo/tests/core/presets_test.cc" "tests/CMakeFiles/core_test.dir/core/presets_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/presets_test.cc.o.d"
  "/root/repo/tests/core/property_test.cc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o.d"
  "/root/repo/tests/core/rekey_test.cc" "tests/CMakeFiles/core_test.dir/core/rekey_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rekey_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
