file(REMOVE_RECURSE
  "CMakeFiles/sfc_test.dir/sfc/curve_properties_test.cc.o"
  "CMakeFiles/sfc_test.dir/sfc/curve_properties_test.cc.o.d"
  "CMakeFiles/sfc_test.dir/sfc/curve_test.cc.o"
  "CMakeFiles/sfc_test.dir/sfc/curve_test.cc.o.d"
  "CMakeFiles/sfc_test.dir/sfc/locality_test.cc.o"
  "CMakeFiles/sfc_test.dir/sfc/locality_test.cc.o.d"
  "sfc_test"
  "sfc_test.pdb"
  "sfc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
