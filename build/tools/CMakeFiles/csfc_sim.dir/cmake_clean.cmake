file(REMOVE_RECURSE
  "CMakeFiles/csfc_sim.dir/csfc_sim.cc.o"
  "CMakeFiles/csfc_sim.dir/csfc_sim.cc.o.d"
  "csfc_sim"
  "csfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csfc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
