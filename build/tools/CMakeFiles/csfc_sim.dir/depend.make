# Empty dependencies file for csfc_sim.
# This may be replaced when dependencies are built.
