# Empty compiler generated dependencies file for csfc_curves.
# This may be replaced when dependencies are built.
