file(REMOVE_RECURSE
  "CMakeFiles/csfc_curves.dir/csfc_curves.cc.o"
  "CMakeFiles/csfc_curves.dir/csfc_curves.cc.o.d"
  "csfc_curves"
  "csfc_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csfc_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
