file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_editing.dir/nonlinear_editing.cc.o"
  "CMakeFiles/nonlinear_editing.dir/nonlinear_editing.cc.o.d"
  "nonlinear_editing"
  "nonlinear_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
