# Empty compiler generated dependencies file for nonlinear_editing.
# This may be replaced when dependencies are built.
