# Empty dependencies file for emulate_classics.
# This may be replaced when dependencies are built.
