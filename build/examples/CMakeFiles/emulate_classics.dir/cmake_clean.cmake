file(REMOVE_RECURSE
  "CMakeFiles/emulate_classics.dir/emulate_classics.cc.o"
  "CMakeFiles/emulate_classics.dir/emulate_classics.cc.o.d"
  "emulate_classics"
  "emulate_classics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulate_classics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
