// Figure 8: the effect of the SFC2 balance factor f on (a) priority
// inversion and (b) deadline misses, both normalized to EDF.
//
// Setup (Section 5.2): real-time multi-priority requests with three
// priority dimensions and transfer-dominated service so SFC3 drops out.
// f = 0 ignores deadlines entirely (minimal inversion, more misses);
// growing f shifts weight to the deadline axis and converges on EDF.
//
// Parameter note: the paper couples service time to priority ("high
// priority requests are smaller"). On this simulator a strong coupling
// turns priority-first ordering into shortest-job-first, which *beats* EDF
// on misses and inverts the figure; we therefore run the sweep with
// uniform block sizes and bursty arrivals near saturation, where the
// paper's shape (misses fall with f, inversion rises with f) reproduces
// cleanly. See EXPERIMENTS.md for the deviation note.

#include <cstdio>

#include "bench_util.h"
#include "sched/edf.h"

namespace csfc {
namespace {

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 5000;
  wc.mean_interarrival_ms = 18.0;
  wc.burst_size = 10;  // bursty arrivals (the server works in batches)
  wc.priority_dims = 3;
  wc.priority_levels = 8;
  wc.deadline_lo_ms = 300.0;
  wc.deadline_hi_ms = 500.0;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.dims = 3;
  sc.metrics.levels = 8;

  const std::vector<std::string> curves{"hilbert", "peano", "diagonal"};
  const std::vector<double> fs{0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0};

  // Point 0 is the EDF baseline; then one point per (f, curve).
  std::vector<RunPoint> points;
  points.push_back(
      {sc, trace, [] { return std::make_unique<EdfScheduler>(); }});
  for (double f : fs) {
    for (const auto& curve : curves) {
      points.push_back(
          {sc, trace,
           bench::CascadedFactory(PresetStage12(
               curve, 3, 3, f, /*window=*/0.05,
               /*deadline_horizon_ms=*/500.0))});
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);

  const RunMetrics& edf = results[0];
  const double edf_inv = static_cast<double>(edf.total_inversions());
  const double edf_miss = static_cast<double>(edf.deadline_misses);
  std::printf("EDF baseline: %llu inversions, %llu/%llu deadline misses\n\n",
              static_cast<unsigned long long>(edf.total_inversions()),
              static_cast<unsigned long long>(edf.deadline_misses),
              static_cast<unsigned long long>(edf.deadline_total));

  std::vector<std::string> headers{"f"};
  for (const auto& c : curves) headers.push_back(c);
  TablePrinter inv_table(headers);
  TablePrinter miss_table(headers);

  size_t next = 1;
  for (double f : fs) {
    std::vector<std::string> irow{FormatDouble(f, 2)};
    std::vector<std::string> mrow{FormatDouble(f, 2)};
    for (size_t c = 0; c < curves.size(); ++c) {
      const RunMetrics& m = results[next++];
      irow.push_back(FormatDouble(
          Percent(static_cast<double>(m.total_inversions()), edf_inv), 1));
      mrow.push_back(FormatDouble(
          Percent(static_cast<double>(m.deadline_misses), edf_miss), 1));
    }
    inv_table.AddRow(std::move(irow));
    miss_table.AddRow(std::move(mrow));
  }

  std::printf("== Figure 8a: priority inversion (%% of EDF) vs f ==\n\n");
  bench::Emit(inv_table, "fig8a_inversion");
  std::printf("== Figure 8b: deadline misses (%% of EDF) vs f ==\n\n");
  bench::Emit(miss_table, "fig8b_misses");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
