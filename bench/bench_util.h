// Shared helpers for the figure-regeneration binaries. Each bench binary
// prints the same rows/series the corresponding paper figure plots; all
// machine-readable output goes through obs::Export — CSV per table when
// CSFC_BENCH_CSV_DIR is set, JSON per table (and per RunMetrics via
// EmitMetrics) when CSFC_BENCH_JSON_DIR is set.

#ifndef CSFC_BENCH_BENCH_UTIL_H_
#define CSFC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/presets.h"
#include "exp/runner.h"
#include "exp/table.h"
#include "obs/export.h"
#include "sched/registry.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace csfc {
namespace bench {

/// Builds a SchedulerFactory from a CascadedConfig through the registry
/// (the one construction path for every policy; the registry validates
/// eagerly). Aborts the bench on a bad configuration rather than
/// mid-sweep.
inline SchedulerFactory CascadedFactory(const CascadedConfig& config) {
  SchedulerRegistryContext ctx;
  ctx.cascaded = config;
  auto factory = MakeSchedulerFactory("csfc", ctx);
  if (!factory.ok()) {
    std::fprintf(stderr, "bad cascaded config: %s\n",
                 factory.status().ToString().c_str());
    std::abort();
  }
  return std::move(*factory);
}

/// Runs and unwraps, aborting with a message on error (benches have no
/// meaningful recovery path).
inline RunMetrics MustRun(const SimulatorConfig& sim,
                          const std::vector<Request>& trace,
                          const SchedulerFactory& factory) {
  auto m = RunSchedulerOnTrace(sim, trace, factory);
  if (!m.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 m.status().ToString().c_str());
    std::abort();
  }
  return std::move(*m);
}

/// Worker count for bench sweeps: one per hardware thread unless
/// CSFC_BENCH_THREADS says otherwise (set it to 1 to force serial runs —
/// the result tables are identical either way).
inline unsigned BenchThreads() {
  if (const char* t = std::getenv("CSFC_BENCH_THREADS")) {
    const long v = std::strtol(t, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return ThreadPool::DefaultThreads();
}

/// Runs every sweep point across BenchThreads() workers and unwraps,
/// aborting on the first error. Results are ordered by point index.
inline std::vector<RunMetrics> MustRunAll(const std::vector<RunPoint>& points) {
  auto m = RunParallel(points, BenchThreads());
  if (!m.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 m.status().ToString().c_str());
    std::abort();
  }
  return std::move(*m);
}

/// Drains a generator config into a trace, aborting on config errors.
inline std::vector<Request> MustGenerate(const WorkloadConfig& config) {
  auto gen = SyntheticGenerator::Create(config);
  if (!gen.ok()) {
    std::fprintf(stderr, "bad workload config: %s\n",
                 gen.status().ToString().c_str());
    std::abort();
  }
  return DrainGenerator(**gen);
}

/// Exports `exportable` (anything with an obs::Export overload) to
/// <dir>/<name>.<ext> and prints the path; errors are reported but not
/// fatal — a failed artifact write must not kill a long sweep.
template <typename T>
inline void ExportTo(const T& exportable, const std::string& dir,
                     const std::string& name, obs::ExportFormat format,
                     const char* ext) {
  const std::string path = dir + "/" + name + "." + ext;
  auto out = obs::FileWriter::Open(path);
  Status s = out.ok() ? obs::Export(exportable, *out, format) : out.status();
  if (s.ok() && out.ok()) s = out->Close();
  if (!s.ok()) {
    std::fprintf(stderr, "%s write failed: %s\n", ext, s.ToString().c_str());
  } else {
    std::printf("(%s: %s)\n", ext, path.c_str());
  }
}

/// Emits the table to stdout and, through obs::Export, to
/// <CSFC_BENCH_CSV_DIR>/<name>.csv and <CSFC_BENCH_JSON_DIR>/<name>.json
/// when those are set.
inline void Emit(const TablePrinter& table, const std::string& name) {
  table.Print();
  std::printf("\n");
  if (const char* dir = std::getenv("CSFC_BENCH_CSV_DIR")) {
    ExportTo(table, dir, name, obs::ExportFormat::kCsv, "csv");
  }
  if (const char* dir = std::getenv("CSFC_BENCH_JSON_DIR")) {
    ExportTo(table, dir, name, obs::ExportFormat::kJson, "json");
  }
}

/// Emits the full RunMetrics aggregate of one run as JSON to
/// <CSFC_BENCH_JSON_DIR>/<name>.json (no-op when the directory is unset) —
/// the raw numbers behind a figure row, for offline diffing.
inline void EmitMetrics(const RunMetrics& metrics, const std::string& name) {
  if (const char* dir = std::getenv("CSFC_BENCH_JSON_DIR")) {
    ExportTo(metrics, dir, name, obs::ExportFormat::kJson, "json");
  }
}

/// The seven Figure-1 curves in paper order.
inline const std::vector<std::string>& Curves() {
  static const std::vector<std::string> kCurves = {
      "scan", "cscan", "peano", "gray", "hilbert", "spiral", "diagonal"};
  return kCurves;
}

}  // namespace bench
}  // namespace csfc

#endif  // CSFC_BENCH_BENCH_UTIL_H_
