// Hot-path microbenchmark: the two per-request costs the scheduler pays on
// every arrival — Characterize (encapsulation) and dispatcher queue ops —
// measured before/after the PR's optimizations on the same inputs:
//
//  * Characterize: direct per-request curve evaluation (enable_lut=false)
//    vs. the precomputed lookup-table path (enable_lut=true), in
//    requests/sec. Values are verified identical before timing.
//  * Dispatcher: steady-state insert+pop pairs against the std::map
//    ReferenceDispatcher vs. the flat-heap and calendar-queue Dispatcher
//    backends at queue depths 10^2 through 10^6, in ops/sec (one op = one
//    insert + one pop).
//  * Service front-end: closed-loop soak of the MPSC ingest ring +
//    dispatcher pump (src/svc) with oversubscribed producers — offer and
//    dispatch throughput plus the enqueue-to-dispatch wait tail.
//
// Results go to stdout and to BENCH_hotpath.json (in CSFC_BENCH_JSON_DIR
// or the working directory) — the perf baseline future PRs compare
// against.
//
// Flags: --depths=CSV overrides the dispatcher depth sweep, --quick cuts
// op counts and reps for CI smoke runs (the JSON keeps its full schema
// either way; quick numbers are not baselines).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.h"
#include "core/cascaded_scheduler.h"
#include "core/dispatcher.h"
#include "core/presets.h"
#include "exp/server_config.h"
#include "exp/table.h"
#include "obs/export.h"
#include "obs/json.h"

namespace csfc {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic 64-bit mix for input generation.
uint64_t Mix(uint64_t x) {
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  x ^= x >> 29;
  return x;
}

std::vector<Request> MakeRequests(size_t n, uint32_t levels,
                                  uint32_t cylinders) {
  std::vector<Request> reqs(n);
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (size_t i = 0; i < n; ++i) {
    Request& r = reqs[i];
    r.id = i;
    x = Mix(x);
    r.priorities = PriorityVec{
        static_cast<PriorityLevel>(x % levels),
        static_cast<PriorityLevel>((x >> 8) % levels),
        static_cast<PriorityLevel>((x >> 16) % levels)};
    r.deadline = MsToSim(50.0 + static_cast<double>((x >> 24) % 900));
    r.cylinder = static_cast<Cylinder>((x >> 40) % cylinders);
  }
  return reqs;
}

std::unique_ptr<Encapsulator> MustCreate(EncapsulatorConfig cfg,
                                         bool enable_lut) {
  cfg.enable_lut = enable_lut;
  auto e = Encapsulator::Create(cfg);
  if (!e.ok()) {
    std::fprintf(stderr, "encapsulator create failed: %s\n",
                 e.status().ToString().c_str());
    std::abort();
  }
  return std::move(*e);
}

double TimeCharacterize(const Encapsulator& e,
                        const std::vector<Request>& reqs, int rounds) {
  const DispatchContext ctx{.now = MsToSim(10), .head = 2000};
  volatile double sink = 0.0;
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    double acc = 0.0;
    for (const Request& r : reqs) acc += e.Characterize(r, ctx);
    sink = sink + acc;
  }
  const double secs = SecondsSince(start);
  return static_cast<double>(reqs.size()) * rounds / secs;
}

/// Run shape (see the flag comments at the top of the file).
struct BenchOptions {
  std::vector<size_t> depths = {100, 1000, 10000, 100000, 1000000};
  bool quick = false;
};

struct CharacterizeResult {
  std::string config;
  double direct_rps;
  double lut_rps;
};

CharacterizeResult BenchCharacterize(const std::string& label,
                                     const EncapsulatorConfig& cfg,
                                     int rounds) {
  const auto direct = MustCreate(cfg, /*enable_lut=*/false);
  const auto lut = MustCreate(cfg, /*enable_lut=*/true);
  const uint32_t levels = uint32_t{1} << cfg.priority_bits;
  const auto reqs = MakeRequests(1 << 14, levels, cfg.cylinders);

  // The LUT path must be a pure optimization: identical v_c on every input.
  const DispatchContext ctx{.now = MsToSim(10), .head = 2000};
  for (const Request& r : reqs) {
    if (direct->Characterize(r, ctx) != lut->Characterize(r, ctx)) {
      std::fprintf(stderr, "LUT mismatch on request %llu (%s)\n",
                   static_cast<unsigned long long>(r.id), label.c_str());
      std::abort();
    }
  }

  // Warmup, then measure.
  TimeCharacterize(*direct, reqs, 2);
  TimeCharacterize(*lut, reqs, 2);
  return CharacterizeResult{label, TimeCharacterize(*direct, reqs, rounds),
                            TimeCharacterize(*lut, reqs, rounds)};
}

struct SimdResult {
  size_t batch;
  double scalar_rps;
  double sse2_rps;
  double avx2_rps;
  double auto_rps;
  std::string auto_backend;  // what kAuto resolved to on this machine
};

double TimeCharacterizeBatch(const Encapsulator& e,
                             std::span<const Request* const> ptrs,
                             std::span<CValue> out, int rounds) {
  const DispatchContext ctx{.now = MsToSim(10), .head = 2000};
  volatile double sink = 0.0;
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    e.CharacterizeBatch(ptrs, ctx, out);
    sink = sink + out[0];
  }
  const double secs = SecondsSince(start);
  return static_cast<double>(ptrs.size()) * rounds / secs;
}

/// The SIMD characterization kernel vs. the forced-scalar batch path, on
/// the fused full-cascade shape (stage-2 formula + R-partition stage 3,
/// LUT on). Each arm is an encapsulator created with a different
/// EncapsulatorConfig::simd request; on hardware (or under a CSFC_SIMD
/// override) that rules a level out, the arm silently resolves lower —
/// the recorded `auto_backend` string says what actually ran, so the
/// JSON stays honest on any machine. Outputs are verified bit-identical
/// across all arms before timing.
SimdResult BenchCharacterizeSimd(size_t batch, bool quick) {
  const CascadedConfig ccfg =
      PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  EncapsulatorConfig cfg = ccfg.encapsulator;

  cfg.simd = simd::Mode::kScalar;
  const auto scalar_enc = MustCreate(cfg, /*enable_lut=*/true);
  cfg.simd = simd::Mode::kSse2;
  const auto sse2_enc = MustCreate(cfg, /*enable_lut=*/true);
  cfg.simd = simd::Mode::kAvx2;
  const auto avx2_enc = MustCreate(cfg, /*enable_lut=*/true);
  cfg.simd = simd::Mode::kAuto;
  const auto auto_enc = MustCreate(cfg, /*enable_lut=*/true);

  const auto reqs = MakeRequests(batch, 16, cfg.cylinders);
  std::vector<const Request*> ptrs;
  for (const Request& r : reqs) ptrs.push_back(&r);
  std::vector<CValue> want(batch), got(batch);

  // Bit-identity gate: the SIMD kernel must be a pure optimization.
  const DispatchContext ctx{.now = MsToSim(10), .head = 2000};
  scalar_enc->CharacterizeBatch(ptrs, ctx, want);
  for (const Encapsulator* e :
       {sse2_enc.get(), avx2_enc.get(), auto_enc.get()}) {
    e->CharacterizeBatch(ptrs, ctx, got);
    for (size_t i = 0; i < batch; ++i) {
      if (got[i] != want[i]) {
        std::fprintf(stderr, "SIMD mismatch (%s) at request %zu, batch %zu\n",
                     e->simd_backend(), i, batch);
        std::abort();
      }
    }
  }

  const size_t target = quick ? (size_t{1} << 18) : (size_t{1} << 22);
  const int rounds = static_cast<int>(std::max<size_t>(1, target / batch));
  const int reps = quick ? 3 : 7;
  TimeCharacterizeBatch(*scalar_enc, ptrs, want, rounds / 4 + 1);  // warmup
  TimeCharacterizeBatch(*auto_enc, ptrs, want, rounds / 4 + 1);
  // Best of several interleaved reps (same rationale as BenchRekeyBatch).
  SimdResult r{batch, 0.0, 0.0, 0.0, 0.0, auto_enc->simd_backend()};
  for (int rep = 0; rep < reps; ++rep) {
    r.scalar_rps = std::max(
        r.scalar_rps, TimeCharacterizeBatch(*scalar_enc, ptrs, want, rounds));
    r.sse2_rps = std::max(
        r.sse2_rps, TimeCharacterizeBatch(*sse2_enc, ptrs, want, rounds));
    r.avx2_rps = std::max(
        r.avx2_rps, TimeCharacterizeBatch(*avx2_enc, ptrs, want, rounds));
    r.auto_rps = std::max(
        r.auto_rps, TimeCharacterizeBatch(*auto_enc, ptrs, want, rounds));
  }
  return r;
}

template <typename D>
double TimeInsertPop(D& d, const std::vector<Request>& reqs, size_t depth,
                     size_t ops) {
  // Prefill to the target depth, then run steady-state insert+pop pairs so
  // the queues stay at that depth throughout.
  uint64_t x = 1;
  auto value_of = [&x] {
    x = Mix(x);
    return static_cast<double>(x % (1 << 20)) / static_cast<double>(1 << 20);
  };
  for (size_t i = 0; i < depth; ++i) d.Insert(value_of(), reqs[i % reqs.size()]);
  const auto start = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    d.Insert(value_of(), reqs[i % reqs.size()]);
    if (!d.Pop().has_value()) std::abort();
  }
  const double secs = SecondsSince(start);
  while (d.Pop().has_value()) {
  }
  return static_cast<double>(ops) / secs;
}

struct DispatcherResult {
  size_t depth;
  double map_ops;
  double flat_ops;
  double calendar_ops;
};

struct RekeyResult {
  size_t depth;
  double scalar_rps;  // RekeyWaiting + per-request Characterize
  double batch_rps;   // RekeyWaitingBatch + CharacterizeBatch
};

/// Swap-time re-characterization: the whole waiting queue is rekeyed
/// against a fresh context, per-request vs. batched. Keys are verified
/// identical between the two entry points before timing (the batch path
/// must be bit-identical, not just close).
RekeyResult BenchRekeyBatch(size_t depth) {
  const CascadedConfig ccfg =
      PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  const auto enc = MustCreate(ccfg.encapsulator, /*enable_lut=*/true);
  DispatcherConfig cfg;
  cfg.queue_backend = QueueBackend::kFlat;  // section baseline is the flat heap
  cfg.discipline = QueueDiscipline::kNonPreemptive;  // all inserts land in q'
  auto created = Dispatcher::Create(cfg);
  if (!created.ok()) std::abort();
  Dispatcher d = *std::move(created);

  const auto reqs = MakeRequests(depth, 16, 3832);
  uint64_t x = 7;
  for (const Request& r : reqs) {
    x = Mix(x);
    d.Insert(static_cast<double>(x % (1 << 20)) / (1 << 20), r);
  }

  // The per-request arm is the path the batch API replaced: before the
  // batch rework, swap-time rekey reached Characterize through
  // std::function hook plumbing (dispatcher hook over queue callback), so
  // the "before" arm routes through a std::function the same way — like
  // the dispatcher section keeps the std::map ReferenceDispatcher as its
  // before.
  const auto rekey_scalar = [&](const DispatchContext& ctx) {
    const std::function<CValue(const Request&)> hook =
        [&](const Request& r) { return enc->Characterize(r, ctx); };
    d.RekeyWaiting(hook);
  };
  const auto rekey_batch = [&](const DispatchContext& ctx) {
    d.RekeyWaitingBatch([&](std::span<const Request* const> batch,
                            std::span<CValue> out) {
      enc->CharacterizeBatch(batch, ctx, out);
    });
  };

  // Identity check: after rekeying with either entry point under the same
  // context, the queue visits in the same (v_c, seq) order.
  const DispatchContext check_ctx{.now = MsToSim(10), .head = 2000};
  std::vector<RequestId> scalar_order, batch_order;
  rekey_scalar(check_ctx);
  d.ForEach([&](const Request& r) { scalar_order.push_back(r.id); });
  rekey_batch(check_ctx);
  d.ForEach([&](const Request& r) { batch_order.push_back(r.id); });
  if (scalar_order != batch_order) {
    std::fprintf(stderr, "batch rekey order mismatch at depth %zu\n", depth);
    std::abort();
  }

  // Each round rekeys the whole queue under a shifting context (as queue
  // swaps would); throughput is rekeyed requests/sec.
  const int rounds = static_cast<int>(4000000 / depth) + 1;
  const auto time_rekey = [&](const auto& rekey) {
    const auto start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      const DispatchContext ctx{
          .now = MsToSim(10.0 + round),
          .head = static_cast<Cylinder>((2000 + 37 * round) % 3832)};
      rekey(ctx);
    }
    return static_cast<double>(depth) * rounds / SecondsSince(start);
  };

  time_rekey(rekey_scalar);  // warmup
  time_rekey(rekey_batch);
  // Best of several interleaved reps: the least-interrupted run of each
  // entry point, measured under the same thermal/scheduling conditions.
  double scalar_rps = 0.0, batch_rps = 0.0;
  for (int rep = 0; rep < 7; ++rep) {
    scalar_rps = std::max(scalar_rps, time_rekey(rekey_scalar));
    batch_rps = std::max(batch_rps, time_rekey(rekey_batch));
  }
  return RekeyResult{depth, scalar_rps, batch_rps};
}

DispatcherResult BenchDispatcher(size_t depth, bool quick) {
  DispatcherConfig cfg;  // conditionally-preemptive, w = 0.05, SP on
  cfg.queue_backend = QueueBackend::kFlat;  // the flat-vs-calendar ablation
  DispatcherConfig calendar_cfg = cfg;
  calendar_cfg.queue_backend = QueueBackend::kCalendar;
  const auto reqs = MakeRequests(1 << 12, 16, 3832);
  size_t ops = depth >= 10000 ? 200000 : 1000000;
  if (quick) ops = std::min<size_t>(ops, 50000);
  // Prefill+drain dominate past 10^5 (each timing call pays 2*depth
  // untimed queue ops); two reps keep the full sweep in budget.
  const int reps = (quick || depth >= 100000) ? 2 : 3;

  ReferenceDispatcher ref(cfg);
  auto flat = Dispatcher::Create(cfg);
  auto calendar = Dispatcher::Create(calendar_cfg);
  if (!flat.ok() || !calendar.ok()) std::abort();

  TimeInsertPop(ref, reqs, depth, ops / 4);  // warmup
  TimeInsertPop(*flat, reqs, depth, ops / 4);
  TimeInsertPop(*calendar, reqs, depth, ops / 4);
  // Best of several interleaved reps (same rationale as BenchRekeyBatch).
  double map_rps = 0.0, flat_rps = 0.0, calendar_rps = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    map_rps = std::max(map_rps, TimeInsertPop(ref, reqs, depth, ops));
    flat_rps = std::max(flat_rps, TimeInsertPop(*flat, reqs, depth, ops));
    calendar_rps =
        std::max(calendar_rps, TimeInsertPop(*calendar, reqs, depth, ops));
  }
  return DispatcherResult{depth, map_rps, flat_rps, calendar_rps};
}

struct ServiceResult {
  size_t producers;
  uint64_t offered;
  uint64_t admitted;
  double offers_per_sec;
  double dispatch_per_sec;
  double p50_wait_ms;
  double p99_wait_ms;
  double p999_wait_ms;
  double max_wait_ms;
};

/// Closed-loop soak of the service front-end: `producers` threads blast
/// the MPSC ring as fast as it accepts (ring-full backpressure closes the
/// loop — a full ring parks the producer on a yield-retry instead of
/// shedding), one pump drains into the cascaded scheduler and serves with
/// no pacing. Oversubscribed by construction, so the enqueue-to-dispatch
/// wait percentiles are real queueing delay, not zeros.
ServiceResult BenchServiceFrontend(size_t producers, bool quick) {
  ServerConfig cfg;
  cfg.WithIngest(/*ring_capacity=*/4096, /*drain_batch=*/64);
  // No admission gates: this section measures the pure front-end cost.
  auto handle = MakeServer(cfg);
  if (!handle.ok()) {
    std::fprintf(stderr, "service frontend setup failed: %s\n",
                 handle.status().ToString().c_str());
    std::abort();
  }
  svc::ServiceServer& server = *handle->server;

  const size_t per_producer = quick ? 20000 : 200000;
  const auto reqs = MakeRequests(1 << 12, 16, 3832);
  if (Status s = server.Start(); !s.ok()) std::abort();

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&server, &reqs, p, per_producer, producers] {
      for (size_t i = 0; i < per_producer; ++i) {
        Request r = reqs[(i * producers + p) % reqs.size()];
        r.id = static_cast<RequestId>(p * per_producer + i);
        r.stream = static_cast<uint32_t>(p);
        while (!server.Offer(r)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();
  const double secs = SecondsSince(start);

  const svc::ServiceStats stats = server.Stats();
  return ServiceResult{
      producers,
      stats.admission.offered,
      stats.admission.admitted,
      static_cast<double>(stats.admission.offered) / secs,
      static_cast<double>(stats.dispatched) / secs,
      stats.p50_wait_ms,
      stats.p99_wait_ms,
      stats.p999_wait_ms,
      stats.max_wait_ms,
  };
}

void WriteJson(const std::vector<CharacterizeResult>& chars,
               const std::vector<SimdResult>& simds,
               const std::vector<DispatcherResult>& disps,
               const std::vector<RekeyResult>& rekeys,
               const std::vector<ServiceResult>& services) {
  std::string path = "BENCH_hotpath.json";
  if (const char* dir = std::getenv("CSFC_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("characterize");
  json.BeginArray();
  for (const CharacterizeResult& c : chars) {
    json.BeginObject();
    json.Field("config", c.config);
    json.Field("direct_rps", c.direct_rps);
    json.Field("lut_rps", c.lut_rps);
    json.Field("speedup", c.lut_rps / c.direct_rps);
    json.EndObject();
  }
  json.EndArray();
  json.Key("characterize_simd");
  json.BeginArray();
  for (const SimdResult& s : simds) {
    json.BeginObject();
    json.Field("batch", static_cast<uint64_t>(s.batch));
    json.Field("scalar_rps", s.scalar_rps);
    json.Field("sse2_rps", s.sse2_rps);
    json.Field("avx2_rps", s.avx2_rps);
    json.Field("auto_rps", s.auto_rps);
    json.Field("speedup_sse2", s.sse2_rps / s.scalar_rps);
    json.Field("speedup_avx2", s.avx2_rps / s.scalar_rps);
    json.Field("auto_backend", s.auto_backend);
    json.EndObject();
  }
  json.EndArray();
  json.Key("dispatcher_insert_pop");
  json.BeginArray();
  for (const DispatcherResult& d : disps) {
    json.BeginObject();
    json.Field("depth", static_cast<uint64_t>(d.depth));
    json.Field("map_ops_per_sec", d.map_ops);
    json.Field("flat_ops_per_sec", d.flat_ops);
    json.Field("speedup", d.flat_ops / d.map_ops);
    json.EndObject();
  }
  json.EndArray();
  // The calendar backend gets its own section (rather than widening the
  // dispatcher_insert_pop rows) so the flat-vs-map baseline series stays
  // comparable across PRs.
  json.Key("dispatcher_calendar");
  json.BeginArray();
  for (const DispatcherResult& d : disps) {
    json.BeginObject();
    json.Field("depth", static_cast<uint64_t>(d.depth));
    json.Field("map_ops_per_sec", d.map_ops);
    json.Field("flat_ops_per_sec", d.flat_ops);
    json.Field("calendar_ops_per_sec", d.calendar_ops);
    json.Field("speedup_vs_map", d.calendar_ops / d.map_ops);
    json.Field("speedup_vs_flat", d.calendar_ops / d.flat_ops);
    json.EndObject();
  }
  json.EndArray();
  json.Key("rekey_batch");
  json.BeginArray();
  for (const RekeyResult& r : rekeys) {
    json.BeginObject();
    json.Field("depth", static_cast<uint64_t>(r.depth));
    json.Field("scalar_rps", r.scalar_rps);
    json.Field("batch_rps", r.batch_rps);
    json.Field("speedup", r.batch_rps / r.scalar_rps);
    json.EndObject();
  }
  json.EndArray();
  json.Key("service_frontend");
  json.BeginArray();
  for (const ServiceResult& s : services) {
    json.BeginObject();
    json.Field("producers", static_cast<uint64_t>(s.producers));
    json.Field("offered", s.offered);
    json.Field("admitted", s.admitted);
    json.Field("offers_per_sec", s.offers_per_sec);
    json.Field("dispatch_per_sec", s.dispatch_per_sec);
    json.Field("p50_wait_ms", s.p50_wait_ms);
    json.Field("p99_wait_ms", s.p99_wait_ms);
    json.Field("p999_wait_ms", s.p999_wait_ms);
    json.Field("max_wait_ms", s.max_wait_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  auto out = obs::FileWriter::Open(path);
  Status s = out.ok() ? out->Append(json.str()) : out.status();
  if (s.ok()) s = out->Append("\n");
  if (s.ok()) s = out->Close();
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::printf("(json: %s)\n", path.c_str());
}

void Run(const BenchOptions& opts) {
  const int char_rounds = opts.quick ? 8 : 32;
  std::vector<CharacterizeResult> chars;
  {
    // The default full cascade: hilbert SFC1, stage-2 formula, R-partition
    // stage 3 — only stage 1 runs curve math.
    CascadedConfig cfg =
        PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
    chars.push_back(
        BenchCharacterize("full-formula-R3", cfg.encapsulator, char_rounds));
  }
  {
    // All-curve cascade: hilbert at every stage (the Figure 9/11 variants)
    // — every stage runs curve math, so the LUT win compounds.
    CascadedConfig cfg =
        PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
    cfg.encapsulator.stage2_mode = Stage2Mode::kCurve;
    cfg.encapsulator.sfc2 = "hilbert";
    cfg.encapsulator.stage2_bits = 8;
    cfg.encapsulator.stage3_mode = Stage3Mode::kCurve;
    cfg.encapsulator.sfc3 = "hilbert";
    cfg.encapsulator.stage3_bits = 8;
    chars.push_back(BenchCharacterize("all-hilbert-curves", cfg.encapsulator,
                                      char_rounds));
  }

  std::printf("== Characterize throughput (requests/sec) ==\n\n");
  TablePrinter ct({"config", "direct", "LUT", "speedup"});
  for (const CharacterizeResult& c : chars) {
    ct.AddRow({c.config, FormatDouble(c.direct_rps / 1e6, 2) + "M",
               FormatDouble(c.lut_rps / 1e6, 2) + "M",
               FormatDouble(c.lut_rps / c.direct_rps, 2) + "x"});
  }
  ct.Print();

  std::vector<SimdResult> simds;
  for (size_t batch : {64, 1024, 65536}) {
    simds.push_back(BenchCharacterizeSimd(batch, opts.quick));
  }
  std::printf(
      "\n== CharacterizeBatch SIMD kernel (requests/sec, fused cascade) "
      "==\n\n");
  TablePrinter simd_t({"batch", "scalar", "sse2", "avx2", "auto",
                       "auto backend", "avx2/scalar"});
  for (const SimdResult& s : simds) {
    simd_t.AddRow({std::to_string(s.batch),
                   FormatDouble(s.scalar_rps / 1e6, 2) + "M",
                   FormatDouble(s.sse2_rps / 1e6, 2) + "M",
                   FormatDouble(s.avx2_rps / 1e6, 2) + "M",
                   FormatDouble(s.auto_rps / 1e6, 2) + "M", s.auto_backend,
                   FormatDouble(s.avx2_rps / s.scalar_rps, 2) + "x"});
  }
  simd_t.Print();

  std::vector<DispatcherResult> disps;
  for (size_t depth : opts.depths) {
    disps.push_back(BenchDispatcher(depth, opts.quick));
  }
  std::printf(
      "\n== Dispatcher insert+pop throughput (pairs/sec) ==\n\n");
  TablePrinter dt({"depth", "std::map", "flat heap", "calendar", "flat/map",
                   "cal/map", "cal/flat"});
  for (const DispatcherResult& d : disps) {
    dt.AddRow({std::to_string(d.depth), FormatDouble(d.map_ops / 1e6, 2) + "M",
               FormatDouble(d.flat_ops / 1e6, 2) + "M",
               FormatDouble(d.calendar_ops / 1e6, 2) + "M",
               FormatDouble(d.flat_ops / d.map_ops, 2) + "x",
               FormatDouble(d.calendar_ops / d.map_ops, 2) + "x",
               FormatDouble(d.calendar_ops / d.flat_ops, 2) + "x"});
  }
  dt.Print();

  std::vector<RekeyResult> rekeys;
  for (size_t depth : {100, 1000, 10000}) {
    rekeys.push_back(BenchRekeyBatch(depth));
  }
  std::printf("\n== Waiting-queue rekey throughput (requests/sec) ==\n\n");
  TablePrinter rt({"depth", "per-request", "batched", "speedup"});
  for (const RekeyResult& r : rekeys) {
    rt.AddRow({std::to_string(r.depth),
               FormatDouble(r.scalar_rps / 1e6, 2) + "M",
               FormatDouble(r.batch_rps / 1e6, 2) + "M",
               FormatDouble(r.batch_rps / r.scalar_rps, 2) + "x"});
  }
  rt.Print();

  std::vector<ServiceResult> services;
  for (size_t producers : std::vector<size_t>{4, 8}) {
    services.push_back(BenchServiceFrontend(producers, opts.quick));
    if (opts.quick) break;  // one soak point is enough for CI smoke
  }
  std::printf(
      "\n== Service front-end soak (closed-loop, no pacing) ==\n\n");
  TablePrinter st({"producers", "offers/s", "dispatch/s", "p50 ms", "p99 ms",
                   "p999 ms", "max ms"});
  for (const ServiceResult& s : services) {
    st.AddRow({std::to_string(s.producers),
               FormatDouble(s.offers_per_sec / 1e6, 2) + "M",
               FormatDouble(s.dispatch_per_sec / 1e6, 2) + "M",
               FormatDouble(s.p50_wait_ms, 3), FormatDouble(s.p99_wait_ms, 3),
               FormatDouble(s.p999_wait_ms, 3),
               FormatDouble(s.max_wait_ms, 3)});
  }
  st.Print();
  std::printf("\n");

  WriteJson(chars, simds, disps, rekeys, services);
}

bool ParseDepths(const std::string& csv, std::vector<size_t>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    if (tok.empty()) return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0) return false;
    out->push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace
}  // namespace csfc

int main(int argc, char** argv) {
  csfc::BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg.rfind("--depths=", 0) == 0 &&
               csfc::ParseDepths(arg.substr(9), &opts.depths)) {
      // parsed in the condition
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_hotpath [--quick] [--depths=CSV]\n");
      return 2;
    }
  }
  csfc::Run(opts);
  return 0;
}
