// Microbenchmarks (google-benchmark): curve mapping throughput, the full
// three-stage encapsulation, and dispatcher queue operations. These bound
// the per-request scheduling overhead the Cascaded-SFC design adds over a
// plain priority queue.

#include <benchmark/benchmark.h>

#include "core/cascaded_scheduler.h"
#include "core/presets.h"
#include "sched/registry.h"
#include "sfc/registry.h"

namespace csfc {
namespace {

void BM_CurveIndex(benchmark::State& state, const std::string& name,
                   uint32_t dims, uint32_t bits) {
  auto curve = MakeCurve(name, GridSpec{.dims = dims, .bits = bits});
  if (!curve.ok()) {
    state.SkipWithError("curve creation failed");
    return;
  }
  std::vector<uint32_t> p(dims);
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  const uint32_t mask = (uint32_t{1} << bits) - 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    for (uint32_t i = 0; i < dims; ++i) {
      p[i] = static_cast<uint32_t>(x >> (8 * i)) & mask;
    }
    benchmark::DoNotOptimize(
        (*curve)->Index(std::span<const uint32_t>(p.data(), dims)));
  }
}

void BM_CurvePoint(benchmark::State& state, const std::string& name,
                   uint32_t dims, uint32_t bits) {
  auto curve = MakeCurve(name, GridSpec{.dims = dims, .bits = bits});
  if (!curve.ok()) {
    state.SkipWithError("curve creation failed");
    return;
  }
  std::vector<uint32_t> p(dims);
  uint64_t x = 1;
  const uint64_t cells = (*curve)->num_cells();
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    (*curve)->Point(x % cells, std::span<uint32_t>(p.data(), dims));
    benchmark::DoNotOptimize(p.data());
  }
}

void BM_Characterize(benchmark::State& state) {
  auto sched = CascadedSfcScheduler::Create(
      PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0));
  if (!sched.ok()) {
    state.SkipWithError("scheduler creation failed");
    return;
  }
  const Encapsulator& e = (*sched)->encapsulator();
  Request r;
  r.priorities = PriorityVec{3, 7, 12};
  r.deadline = MsToSim(350);
  r.cylinder = 1234;
  DispatchContext ctx{.now = MsToSim(10), .head = 2000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Characterize(r, ctx));
    ++r.cylinder;
  }
}

void BM_EnqueueDispatch(benchmark::State& state) {
  SchedulerRegistryContext rctx;
  rctx.cascaded = PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  auto factory = MakeSchedulerFactory("csfc", rctx);
  if (!factory.ok()) {
    state.SkipWithError("scheduler creation failed");
    return;
  }
  SchedulerPtr sched = (*factory)();
  DispatchContext ctx{.now = 0, .head = 0};
  Request r;
  r.priorities = PriorityVec{1, 2, 3};
  r.deadline = MsToSim(600);
  uint64_t x = 7;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    r.cylinder = static_cast<Cylinder>((x >> 33) % 3832);
    sched->Enqueue(r, ctx);
    benchmark::DoNotOptimize(sched->Dispatch(ctx));
  }
}

void RegisterAll() {
  for (const char* name : {"scan", "cscan", "peano", "gray", "hilbert",
                           "spiral", "diagonal"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_CurveIndex/") + name + "/3d4b").c_str(),
        [name](benchmark::State& s) { BM_CurveIndex(s, name, 3, 4); });
    benchmark::RegisterBenchmark(
        (std::string("BM_CurveIndex/") + name + "/2d16b").c_str(),
        [name](benchmark::State& s) { BM_CurveIndex(s, name, 2, 16); });
    benchmark::RegisterBenchmark(
        (std::string("BM_CurvePoint/") + name + "/3d4b").c_str(),
        [name](benchmark::State& s) { BM_CurvePoint(s, name, 3, 4); });
  }
  benchmark::RegisterBenchmark("BM_Characterize", BM_Characterize);
  benchmark::RegisterBenchmark("BM_EnqueueDispatch", BM_EnqueueDispatch);
}

}  // namespace
}  // namespace csfc

int main(int argc, char** argv) {
  csfc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
