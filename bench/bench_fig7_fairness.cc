// Figure 7: fairness of SFC1 across QoS dimensions, in 4-D with 16 levels
// per dimension, mean interarrival 25 ms.
//   (a) standard deviation of the per-dimension priority inversion
//       (each dimension normalized to FIFO's count on that dimension)
//       vs. window size — lower is fairer;
//   (b) the most favored dimension (lowest per-dimension inversion, % of
//       FIFO) vs. window size — curves like C-Scan/Sweep have a "free"
//       dimension, ideal when one QoS parameter dominates all others.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sched/fcfs.h"

namespace csfc {
namespace {

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 3000;
  wc.mean_interarrival_ms = 25.0;
  wc.priority_dims = 4;
  wc.priority_levels = 16;
  wc.relaxed_deadlines = true;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.dims = 4;
  sc.metrics.levels = 16;

  // Point 0 is the FIFO baseline; then one point per (window, curve).
  std::vector<RunPoint> points;
  points.push_back(
      {sc, trace, [] { return std::make_unique<FcfsScheduler>(); }});
  for (int wpct = 0; wpct <= 100; wpct += 10) {
    for (const auto& curve : bench::Curves()) {
      points.push_back({sc, trace,
                        bench::CascadedFactory(
                            PresetStage1Only(curve, 4, 4, wpct / 100.0))});
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);
  const RunMetrics& fifo = results[0];

  std::vector<std::string> headers{"window%"};
  for (const auto& c : bench::Curves()) headers.push_back(c);
  TablePrinter stddev_table(headers);
  TablePrinter favored_table(headers);

  size_t next = 1;
  for (int wpct = 0; wpct <= 100; wpct += 10) {
    std::vector<std::string> srow{std::to_string(wpct)};
    std::vector<std::string> frow{std::to_string(wpct)};
    for (size_t c = 0; c < bench::Curves().size(); ++c) {
      const RunMetrics& m = results[next++];
      // Per-dimension inversion as % of FIFO's count on that dimension.
      std::vector<double> pct(4);
      double mean = 0.0;
      double best = 1e18;
      for (size_t k = 0; k < 4; ++k) {
        pct[k] = Percent(static_cast<double>(m.inversions_per_dim[k]),
                         static_cast<double>(fifo.inversions_per_dim[k]));
        mean += pct[k] / 4.0;
        best = std::min(best, pct[k]);
      }
      double var = 0.0;
      for (double p : pct) var += (p - mean) * (p - mean) / 4.0;
      srow.push_back(FormatDouble(std::sqrt(var), 2));
      frow.push_back(FormatDouble(best, 1));
    }
    stddev_table.AddRow(std::move(srow));
    favored_table.AddRow(std::move(frow));
  }

  std::printf("== Figure 7a: stddev of per-dimension priority inversion "
              "(%% of FIFO) vs window ==\n\n");
  bench::Emit(stddev_table, "fig7a_stddev");
  std::printf("== Figure 7b: most favored dimension (%% of FIFO) vs "
              "window ==\n\n");
  bench::Emit(favored_table, "fig7b_favored");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
