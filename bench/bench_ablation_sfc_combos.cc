// Ablation: the 7^3 SFC-combination space of Section 5 ("if we limit
// ourselves to the seven space-filling curves ... we will have 7^3
// different versions"). The paper samples this space rather than sweeping
// it exhaustively; this bench does the same, evaluating every SFC1 choice
// against a panel of SFC2/SFC3 settings and reporting the three headline
// metrics per combination, so the interaction between the stages is
// visible.

#include <cstdio>

#include "bench_util.h"
#include "sched/edf.h"

namespace csfc {
namespace {

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 3000;
  wc.mean_interarrival_ms = 12.0;
  wc.burst_size = 10;
  wc.priority_dims = 3;
  wc.priority_levels = 8;
  wc.deadline_lo_ms = 100.0;
  wc.deadline_hi_ms = 900.0;
  wc.bytes_lo = 8 * 1024;
  wc.bytes_hi = 8 * 1024;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kFullDisk;
  sc.metrics.dims = 3;
  sc.metrics.levels = 8;

  TablePrinter t({"sfc1", "sfc2", "sfc3", "inv% (vs edf)", "miss% (vs edf)",
                  "mean seek ms"});
  struct Stage2Choice {
    const char* label;
    Stage2Mode mode;
    double f;
    const char* curve;
  };
  const std::vector<Stage2Choice> stage2s = {
      {"f=1", Stage2Mode::kFormula, 1.0, ""},
      {"diagonal", Stage2Mode::kCurve, 0.0, "diagonal"},
      {"hilbert", Stage2Mode::kCurve, 0.0, "hilbert"},
  };
  struct Stage3Choice {
    const char* label;
    uint32_t r;  // 0 = use a curve instead
    const char* curve;
  };
  const std::vector<Stage3Choice> stage3s = {
      {"R=3", 3, ""},
      {"cscan-curve", 0, "cscan"},
      {"hilbert-curve", 0, "hilbert"},
  };

  // Point 0 is the EDF baseline; then one point per (sfc1, sfc2, sfc3).
  std::vector<RunPoint> points;
  points.push_back(
      {sc, trace, [] { return std::make_unique<EdfScheduler>(); }});
  for (const auto& sfc1 : bench::Curves()) {
    for (const auto& s2 : stage2s) {
      for (const auto& s3 : stage3s) {
        CascadedConfig cfg =
            PresetFull(std::string(sfc1), 3, 3, 1.0, 3, 3832, 1.0, 900.0);
        cfg.encapsulator.stage2_mode = s2.mode;
        if (s2.mode == Stage2Mode::kFormula) {
          cfg.encapsulator.f = s2.f;
        } else {
          cfg.encapsulator.sfc2 = s2.curve;
          cfg.encapsulator.stage2_bits = 8;
        }
        if (s3.r > 0) {
          cfg.encapsulator.stage3_mode = Stage3Mode::kPartitionedCScan;
          cfg.encapsulator.partitions_r = s3.r;
        } else {
          cfg.encapsulator.stage3_mode = Stage3Mode::kCurve;
          cfg.encapsulator.sfc3 = s3.curve;
          cfg.encapsulator.stage3_bits = 8;
        }
        points.push_back({sc, trace, bench::CascadedFactory(cfg)});
      }
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);
  const RunMetrics& edf = results[0];

  size_t next = 1;
  for (const auto& sfc1 : bench::Curves()) {
    for (const auto& s2 : stage2s) {
      for (const auto& s3 : stage3s) {
        const RunMetrics& m = results[next++];
        t.AddRow(
            {std::string(sfc1), s2.label, s3.label,
             FormatDouble(
                 Percent(static_cast<double>(m.total_inversions()),
                         static_cast<double>(edf.total_inversions())),
                 1),
             FormatDouble(
                 Percent(static_cast<double>(m.deadline_misses),
                         static_cast<double>(edf.deadline_misses)),
                 1),
             FormatDouble(m.mean_seek_ms(), 3)});
      }
    }
  }
  std::printf("== Ablation: sampled SFC1 x SFC2 x SFC3 combinations ==\n\n");
  bench::Emit(t, "ablation_sfc_combos");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
