// Ablation: the Section 4.3 extension schedulers on the editing-server
// EDL workload.
//
//  * DDS vs SFC-DDS: the plain DDS only understands dimension 0 of the
//    priority vector; adding the SFC1 front end lets it balance two QoS
//    dimensions when selecting demotion victims.
//  * BUCKET vs SFC-BUCKET: the plain BUCKET serves each bucket in pure
//    deadline order, seeking wildly; the SFC3 band sweep recovers most of
//    the seek time at a bounded urgency cost.

#include <cstdio>

#include "bench_util.h"
#include "sched/bucket.h"
#include "sched/dds.h"
#include "sched/extended.h"
#include "workload/edl.h"

namespace csfc {
namespace {

std::vector<Request> EdlTrace(uint32_t dims) {
  EdlWorkloadConfig ec;
  ec.seed = 21;
  ec.num_editors = 48;
  ec.ops_per_script = 24;
  // Period chosen so the aggregate request rate sits near the disk's
  // service rate (~20 ms per request): deep enough queues to expose the
  // schedulers, shallow enough that DDS's O(queue) plan maintenance stays
  // tractable.
  ec.period_ms = 1050.0;
  ec.deadline_lo_ms = 150.0;
  ec.deadline_hi_ms = 400.0;
  auto gen = EdlWorkloadGenerator::Create(ec);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    std::abort();
  }
  auto trace = DrainGenerator(**gen);
  if (dims == 2) {
    // Add an independent second QoS dimension (request value) so the
    // multi-priority capability of SFC-DDS matters.
    Rng rng(5);
    for (Request& r : trace) {
      r.priorities.push_back(static_cast<PriorityLevel>(rng.Uniform(8)));
    }
  }
  return trace;
}

DiskModel* SharedDisk() {
  static DiskModel model = *DiskModel::Create(DiskParams::PanaVissDisk());
  return &model;
}

void Run() {
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;

  const auto trace = EdlTrace(/*dims=*/2);
  std::printf("EDL workload: %zu requests, 48 editors, 2 QoS dimensions\n\n",
              trace.size());

  // DiskModel is immutable after Create, so the shared instance is safe
  // to query from concurrently running points.
  std::vector<SchedulerEntry> schedulers;
  schedulers.push_back(
      {"dds", [] { return std::make_unique<DdsScheduler>(SharedDisk()); }});
  schedulers.push_back({"sfc-dds (hilbert)", [] {
                          auto s = SfcDdsScheduler::Create(SharedDisk(),
                                                           "hilbert", 2, 3);
                          return std::move(*s);
                        }});
  schedulers.push_back({"sfc-dds (diagonal)", [] {
                          auto s = SfcDdsScheduler::Create(SharedDisk(),
                                                           "diagonal", 2, 3);
                          return std::move(*s);
                        }});
  schedulers.push_back(
      {"bucket", [] { return std::make_unique<BucketScheduler>(8, 4); }});
  schedulers.push_back({"sfc-bucket (1s band)", [] {
                          return std::make_unique<SfcBucketScheduler>(
                              8, 4, MsToSim(1000.0));
                        }});
  auto compared =
      ComparePolicies(sc, trace, schedulers, bench::BenchThreads());
  if (!compared.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 compared.status().ToString().c_str());
    std::abort();
  }

  TablePrinter t({"scheduler", "misses", "inv d0", "inv d1", "mean seek ms",
                  "mean resp ms"});
  for (const ComparisonRow& row : *compared) {
    const RunMetrics& m = row.metrics;
    t.AddRow({row.label, std::to_string(m.deadline_misses),
              std::to_string(m.inversions_per_dim[0]),
              std::to_string(m.inversions_per_dim[1]),
              FormatDouble(m.mean_seek_ms(), 3),
              FormatDouble(m.response_ms.mean(), 1)});
  }

  std::printf("== Ablation: Section 4.3 extension schedulers ==\n\n");
  bench::Emit(t, "ablation_extensions");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
