// Figure 11: the NewsByte non-linear editing server (Section 6).
// Aggregate weighted losses vs. number of concurrent users (68..91 per
// disk) for five schedulers:
//   FCFS, Sweep-X (deadline on the major axis: essentially EDF),
//   Sweep-Y (priority on the major axis: essentially multi-queue),
//   Hilbert and Peano (priority on X, deadline on Y).
//
// Each user sustains an MPEG-1 stream at 1.5 Mbps in 64 KB blocks,
// requests arrive in periodic bursts, carry one of 8 priority levels
// (normal across users), and must finish within 75..150 ms. The cost
// function is the weighted sum of per-level miss ratios, weights linear
// with an 11:1 top-to-bottom ratio.

#include <cstdio>

#include "bench_util.h"
#include "sched/fcfs.h"
#include "workload/mpeg.h"

namespace csfc {
namespace {

std::vector<Request> EditingTrace(uint32_t users) {
  MpegWorkloadConfig mc;
  mc.seed = 42;
  mc.num_users = users;
  // 68..91 users at 1.5 Mbps exceed a single Table-1 disk; in the PanaViss
  // server their streams (and the rotating parity) stripe over the five
  // RAID-5 members, so the simulated member disk carries a fifth of each
  // stream. Users run phase-staggered (steady state of editors who started
  // at independent times) rather than in one synchronized burst.
  mc.stream_mbps = 1.5 / 5.0;
  mc.user_phase_spread_ms = mc.PeriodMs() - mc.batch_jitter_ms;
  mc.duration_ms = 60000.0;
  auto gen = MpegStreamGenerator::Create(mc);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    std::abort();
  }
  return DrainGenerator(**gen);
}

void Run() {
  SimulatorConfig sc;
  sc.metrics.dims = 1;
  sc.metrics.levels = 8;

  // The deadline horizon matches the workload's deadline range so the
  // deadline axis has full resolution where it matters.
  const double horizon = 150.0;
  struct Entry {
    std::string label;
    SchedulerFactory factory;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }});
  entries.push_back({"Sweep-X",
                     bench::CascadedFactory(PresetStage2Curve(
                         "cscan", /*deadline_major=*/true, 3, 0.05, horizon))});
  entries.push_back(
      {"Sweep-Y",
       bench::CascadedFactory(PresetStage2Curve(
           "cscan", /*deadline_major=*/false, 3, 0.05, horizon))});
  entries.push_back(
      {"Hilbert",
       bench::CascadedFactory(PresetStage2Curve(
           "hilbert", /*deadline_major=*/false, 3, 0.05, horizon))});
  entries.push_back(
      {"Peano", bench::CascadedFactory(PresetStage2Curve(
                    "peano", /*deadline_major=*/false, 3, 0.05, horizon))});

  std::vector<std::string> headers{"users"};
  for (const auto& e : entries) headers.push_back(e.label);
  TablePrinter t(headers);

  // One point per (user count, scheduler); each user count replays its own
  // shared trace.
  std::vector<RunPoint> points;
  for (uint32_t users = 68; users <= 91; users += 3) {
    const TracePtr trace = ShareTrace(EditingTrace(users));
    for (const auto& e : entries) {
      points.push_back({sc, trace, e.factory});
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);

  size_t next = 0;
  for (uint32_t users = 68; users <= 91; users += 3) {
    std::vector<std::string> row{std::to_string(users)};
    for (size_t e = 0; e < entries.size(); ++e) {
      // The heaviest load's full aggregate per scheduler, for offline
      // diffing beyond the single cost number the figure plots.
      if (users == 91) {
        bench::EmitMetrics(results[next],
                           "fig11_metrics_" + entries[e].label);
      }
      row.push_back(
          FormatDouble(results[next++].WeightedLossCost(0, 11.0, 1.0), 3));
    }
    t.AddRow(std::move(row));
  }
  std::printf("== Figure 11: aggregate weighted losses vs #users ==\n\n");
  bench::Emit(t, "fig11_losses");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
