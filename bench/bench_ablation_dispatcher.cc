// Ablation: the dispatcher design space of Section 3 — the three queue
// disciplines, the SP policy on/off, and the ER expansion factor — on one
// fixed workload. Shows the trade-off the conditionally-preemptive
// scheduler navigates: fully-preemptive minimizes inversion but spikes the
// maximum response time (starvation), non-preemptive the reverse.

#include <cstdio>

#include "bench_util.h"

namespace csfc {
namespace {

struct Variant {
  const char* label;
  QueueDiscipline discipline;
  double window;
  bool sp;
  bool er;
  double e;
  QueueBackend backend = QueueBackend::kFlat;
};

SchedulerFactory FactoryFor(const Variant& v) {
  CascadedConfig cfg = PresetStage1Only("diagonal", 3, 4, v.window, v.sp);
  cfg.dispatcher.discipline = v.discipline;
  cfg.dispatcher.expand_reset = v.er;
  cfg.dispatcher.expansion_factor = v.e;
  cfg.dispatcher.queue_backend = v.backend;
  return bench::CascadedFactory(cfg);
}

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 4000;
  wc.mean_interarrival_ms = 12.0;
  wc.priority_dims = 3;
  wc.priority_levels = 16;
  wc.relaxed_deadlines = true;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.dims = 3;
  sc.metrics.levels = 16;

  std::vector<Variant> variants;
  variants.push_back({"fully-preemptive", QueueDiscipline::kFullyPreemptive,
                      0, false, false, 2});
  variants.push_back({"non-preemptive", QueueDiscipline::kNonPreemptive, 0,
                      false, false, 2});
  for (double w : {0.02, 0.05, 0.10, 0.25}) {
    variants.push_back({"conditional",
                        QueueDiscipline::kConditionallyPreemptive, w, true,
                        false, 2});
  }
  variants.push_back({"conditional-noSP",
                      QueueDiscipline::kConditionallyPreemptive, 0.05, false,
                      false, 2});
  for (double e : {1.5, 2.0, 4.0}) {
    variants.push_back({"conditional+ER",
                        QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                        true, e});
  }
  // Queue-backend ablation: the calendar queue must reproduce the flat
  // backend's scheduling metrics exactly (same service order by
  // construction) — any drift in this table is a correctness bug, not a
  // tuning choice. Its win is throughput, measured in bench_micro_hotpath.
  variants.push_back({"conditional(cal)",
                      QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                      false, 2, QueueBackend::kCalendar});
  variants.push_back({"conditional+ER(cal)",
                      QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                      true, 2, QueueBackend::kCalendar});

  std::vector<RunPoint> points;
  for (const Variant& v : variants) {
    points.push_back({sc, trace, FactoryFor(v)});
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);

  TablePrinter t({"discipline", "queue", "window", "SP", "ER(e)",
                  "inversions", "mean resp ms", "max resp ms",
                  "max resp lvl15"});
  for (size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const RunMetrics& m = results[i];
    // The lowest level's max response is the starvation indicator the ER
    // policy bounds: urgent streams can push level-15 waits sky-high under
    // a fully-preemptive dispatcher.
    const double worst_level_max =
        m.response_per_level.empty() ? 0.0 : m.response_per_level.back().max();
    t.AddRow({v.label,
              v.backend == QueueBackend::kCalendar ? "calendar" : "flat",
              FormatDouble(v.window, 2), v.sp ? "on" : "off",
              v.er ? FormatDouble(v.e, 1) : "off",
              std::to_string(m.total_inversions()),
              FormatDouble(m.response_ms.mean(), 1),
              FormatDouble(m.response_ms.max(), 1),
              FormatDouble(worst_level_max, 1)});
  }

  std::printf("== Ablation: dispatcher disciplines and policies ==\n\n");
  bench::Emit(t, "ablation_dispatcher");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
