// Table 1: the disk model. Prints the configured parameters next to the
// quantities the model reproduces (mean random seek, full-stroke seek,
// rotation period, zone transfer rates) so the calibration against the
// published Quantum XP32150 figures is auditable.

#include <cstdio>

#include "bench_util.h"
#include "disk/disk_model.h"
#include "disk/raid.h"

namespace csfc {
namespace {

void Run() {
  const DiskParams params = DiskParams::PanaVissDisk();
  auto model = DiskModel::Create(params);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    std::abort();
  }

  std::printf("== Table 1: disk model (Quantum XP32150-class) ==\n\n");
  TablePrinter t({"parameter", "configured", "paper (Table 1)"});
  t.AddRow({"cylinders", std::to_string(params.cylinders), "3832"});
  t.AddRow({"tracks/cylinder", std::to_string(params.tracks_per_cylinder),
            "10"});
  t.AddRow({"zones", std::to_string(params.zones), "16"});
  t.AddRow({"sector bytes", std::to_string(params.sector_bytes), "512"});
  t.AddRow({"rotation (RPM)", std::to_string(params.rpm), "7200"});
  t.AddRow({"file block (KB)",
            std::to_string(params.block_bytes / 1024), "64"});
  t.AddRow({"RAID", "5 disks (4 data + 1 parity)", "5 disks (4D+1P)"});
  bench::Emit(t, "table1_params");

  TablePrinter v({"derived quantity", "model", "paper"});
  v.AddRow({"mean random seek (ms)",
            FormatDouble(model->MeanRandomSeekMs(), 3), "8.5"});
  v.AddRow({"max seek (ms)", FormatDouble(model->MaxSeekMs(), 3), "18"});
  v.AddRow({"single-cyl seek (ms)",
            FormatDouble(params.seek.SeekMs(1), 3), "(typical ~2.5)"});
  v.AddRow({"rotation (ms)", FormatDouble(model->RotationMs(), 3), "8.33"});
  v.AddRow({"avg rot. latency (ms)",
            FormatDouble(model->AvgRotationalLatencyMs(), 3), "4.17"});
  v.AddRow({"outer-zone rate (MB/s)",
            FormatDouble(model->ZoneRateMBps(0), 2), "(zoned)"});
  v.AddRow({"inner-zone rate (MB/s)",
            FormatDouble(model->ZoneRateMBps(params.zones - 1), 2),
            "(zoned)"});
  v.AddRow({"64KB transfer, outer (ms)",
            FormatDouble(model->TransferTimeMs(0, 65536), 3), "-"});
  v.AddRow({"64KB transfer, inner (ms)",
            FormatDouble(model->TransferTimeMs(params.cylinders - 1, 65536), 3),
            "-"});
  bench::Emit(v, "table1_derived");

  std::printf("seek curve samples (distance -> ms):\n");
  for (uint32_t d : {1u, 10u, 100u, 600u, 1000u, 2000u, 3831u}) {
    std::printf("  seek(%4u) = %6.3f\n", d, params.seek.SeekMs(d));
  }
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
