// Figure 6: scalability of the Cascaded-SFC scheduler — priority
// inversion (as % of FIFO) vs. the number of QoS dimensions, 2..12
// dimensions with 16 priority levels each, mean interarrival 25 ms.

#include <cstdio>

#include "bench_util.h"
#include "sched/fcfs.h"

namespace csfc {
namespace {

void Run() {
  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.levels = 16;

  std::printf("== Figure 6: priority inversion (%% of FIFO) vs "
              "#dimensions ==\n\n");
  std::vector<std::string> headers{"dims"};
  for (const auto& c : bench::Curves()) headers.push_back(c);
  TablePrinter t(headers);

  // Per dimension count: one FIFO baseline point, then the seven curves.
  std::vector<RunPoint> points;
  for (uint32_t dims = 2; dims <= 12; ++dims) {
    WorkloadConfig wc;
    wc.seed = 42;
    wc.count = 2500;
    wc.mean_interarrival_ms = 25.0;
    wc.priority_dims = dims;
    wc.priority_levels = 16;
    wc.relaxed_deadlines = true;
    const TracePtr trace = ShareTrace(bench::MustGenerate(wc));
    sc.metrics.dims = dims;

    points.push_back(
        {sc, trace, [] { return std::make_unique<FcfsScheduler>(); }});
    for (const auto& curve : bench::Curves()) {
      points.push_back({sc, trace,
                        bench::CascadedFactory(
                            PresetStage1Only(curve, dims, 4, 0.05))});
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);

  size_t next = 0;
  for (uint32_t dims = 2; dims <= 12; ++dims) {
    const double base =
        static_cast<double>(results[next++].total_inversions());
    std::vector<std::string> row{std::to_string(dims)};
    for (size_t c = 0; c < bench::Curves().size(); ++c) {
      const RunMetrics& m = results[next++];
      row.push_back(FormatDouble(
          Percent(static_cast<double>(m.total_inversions()), base), 1));
    }
    t.AddRow(std::move(row));
  }
  bench::Emit(t, "fig6_scalability");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
