// Figure 10: the effect of the SFC3 partition count R on (a) priority
// inversion (% of C-SCAN), (b) deadline losses (normalized to C-SCAN) and
// (c) seek time, against the C-SCAN and EDF baselines.
//
// Setup (Section 5.3): small blocks so seek time matters; three priority
// dimensions plus deadlines; SFC1/SFC2 fixed (hilbert, f = 1); SFC3 is the
// R-partitioned C-Scan stage. R = 1 sorts on seek alone; large R sorts on
// priority alone; the sweet spot balances all three metrics.
//
// The dispatcher runs with a full-space window (batch mode) and
// re-characterizes each forming batch against the current head, so every
// partition is served in one coherent cylinder sweep — without this the
// enqueue-time distances of different instants interleave and the sweep
// degenerates toward random order (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "sched/edf.h"
#include "sched/scan_family.h"

namespace csfc {
namespace {

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 4000;
  wc.mean_interarrival_ms = 12.0;
  wc.burst_size = 10;  // batched arrivals keep a reorderable queue depth
  wc.priority_dims = 3;
  wc.priority_levels = 8;
  wc.deadline_lo_ms = 100.0;
  wc.deadline_hi_ms = 900.0;
  wc.bytes_lo = 8 * 1024;  // small blocks: seek-dominated service
  wc.bytes_hi = 8 * 1024;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kFullDisk;
  sc.metrics.dims = 3;
  sc.metrics.levels = 8;

  // Points 0/1 are the C-SCAN and EDF baselines; then one point per R.
  std::vector<RunPoint> points;
  points.push_back({sc, trace, [] {
                      return std::make_unique<ScanScheduler>(
                          ScanVariant::kCScan, 3832);
                    }});
  points.push_back(
      {sc, trace, [] { return std::make_unique<EdfScheduler>(); }});
  for (uint32_t r = 1; r <= 10; ++r) {
    points.push_back(
        {sc, trace,
         bench::CascadedFactory(PresetFull(
             "hilbert", 3, 3, /*f=*/1.0, r, 3832, /*window=*/1.0,
             /*deadline_horizon_ms=*/900.0))});
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);
  const RunMetrics& cscan = results[0];
  const RunMetrics& edf = results[1];

  std::printf("baselines:\n");
  std::printf("  cscan: inversions=%llu misses=%llu seek=%.1f ms total\n",
              static_cast<unsigned long long>(cscan.total_inversions()),
              static_cast<unsigned long long>(cscan.deadline_misses),
              cscan.total_seek_ms);
  std::printf("  edf:   inversions=%llu misses=%llu seek=%.1f ms total\n\n",
              static_cast<unsigned long long>(edf.total_inversions()),
              static_cast<unsigned long long>(edf.deadline_misses),
              edf.total_seek_ms);

  TablePrinter t({"R", "inversion% (vs cscan)", "misses (norm. to cscan)",
                  "mean seek ms", "edf inv%", "edf miss norm", "edf seek"});
  const double cs_inv = static_cast<double>(cscan.total_inversions());
  const double cs_miss = static_cast<double>(cscan.deadline_misses);
  for (uint32_t r = 1; r <= 10; ++r) {
    const RunMetrics& m = results[1 + r];
    t.AddRow({std::to_string(r),
              FormatDouble(
                  Percent(static_cast<double>(m.total_inversions()), cs_inv),
                  1),
              FormatDouble(static_cast<double>(m.deadline_misses) /
                               (cs_miss > 0 ? cs_miss : 1.0),
                           3),
              FormatDouble(m.mean_seek_ms(), 3),
              FormatDouble(
                  Percent(static_cast<double>(edf.total_inversions()), cs_inv),
                  1),
              FormatDouble(static_cast<double>(edf.deadline_misses) /
                               (cs_miss > 0 ? cs_miss : 1.0),
                           3),
              FormatDouble(edf.mean_seek_ms(), 3)});
  }
  std::printf("== Figure 10: effect of R on SFC3 (cascaded vs C-SCAN and "
              "EDF) ==\n\n");
  bench::Emit(t, "fig10_R");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
