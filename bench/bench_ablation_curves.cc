// Ablation: static curve-quality analysis (Section 1's "ability to analyze
// the quality of the schedules generated"). For each Figure-1 curve in 2-D
// and 3-D: continuity (jumps), locality (mean step length), and the
// per-dimension inversion rate of randomly sampled ordered pairs — a
// workload-independent predictor of the priority-inversion behavior each
// curve induces as SFC1.

#include <cstdio>

#include "bench_util.h"
#include "sfc/locality.h"
#include "sfc/registry.h"

namespace csfc {
namespace {

void RunDims(uint32_t dims, uint32_t bits) {
  std::printf("== Curve analysis: %u dims, %u bits/dim ==\n\n", dims, bits);
  std::vector<std::string> headers{"curve", "jumps", "mean step L1",
                                   "max step"};
  for (uint32_t k = 0; k < dims; ++k) {
    headers.push_back("inv-rate d" + std::to_string(k));
  }
  for (uint32_t k = 0; k < dims; ++k) {
    headers.push_back("irreg d" + std::to_string(k));
  }
  TablePrinter t(headers);
  for (const auto& name : bench::Curves()) {
    auto curve = MakeCurve(name, GridSpec{.dims = dims, .bits = bits});
    if (!curve.ok()) continue;
    auto stats = AnalyzeCurve(**curve);
    if (!stats.ok()) continue;
    std::vector<std::string> row{std::string(name),
                                 std::to_string(stats->jumps),
                                 FormatDouble(stats->mean_step_l1, 3),
                                 std::to_string(stats->max_step_l1)};
    for (double r : stats->dim_inversion_rate) {
      row.push_back(FormatDouble(r, 3));
    }
    for (uint64_t irr : stats->dim_irregularity) {
      row.push_back(std::to_string(irr));
    }
    t.AddRow(std::move(row));
  }
  bench::Emit(t, "ablation_curves_" + std::to_string(dims) + "d");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::RunDims(2, 6);
  csfc::RunDims(3, 4);
  csfc::RunDims(4, 3);
  return 0;
}
