// Figure 9: selectivity — when deadline misses are inevitable, which
// priority levels lose? The figure shows the number of misses per priority
// level (8 levels) in each of the three QoS dimensions, for EDF and for
// the Cascaded-SFC scheduler with three SFC1 choices. The ideal scheduler
// concentrates all misses at level 7 (the least important).
//
// Setup: same workload as Figure 8, f = 1, load raised until ~10-20% of
// deadlines miss.

#include <cstdio>

#include "bench_util.h"
#include "sched/edf.h"

namespace csfc {
namespace {

void Run() {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = 3000;
  wc.mean_interarrival_ms = 13.0;  // enough pressure to force misses
  wc.burst_size = 10;
  wc.priority_dims = 3;
  wc.priority_levels = 8;
  wc.deadline_lo_ms = 500.0;
  wc.deadline_hi_ms = 700.0;
  wc.couple_size_to_priority = true;  // high priority = small A/V chunks
  wc.bytes_lo = 32 * 1024;
  wc.bytes_hi = 128 * 1024;
  const auto trace = bench::MustGenerate(wc);

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.dims = 3;
  sc.metrics.levels = 8;

  std::vector<SchedulerEntry> schedulers;
  schedulers.push_back(
      {"EDF", [] { return std::make_unique<EdfScheduler>(); }});
  for (const char* curve : {"hilbert", "peano", "scan"}) {
    const CascadedConfig cfg =
        PresetStage12(curve, 3, 3, /*f=*/1.0, /*window=*/0.05,
                      /*deadline_horizon_ms=*/700.0);
    schedulers.push_back({curve, bench::CascadedFactory(cfg)});
  }
  auto compared =
      ComparePolicies(sc, trace, schedulers, bench::BenchThreads());
  if (!compared.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 compared.status().ToString().c_str());
    std::abort();
  }
  const std::vector<ComparisonRow>& entries = *compared;

  for (size_t dim = 0; dim < 3; ++dim) {
    std::printf("== Figure 9: deadline misses per priority level, "
                "dimension %zu (level 0 = most important) ==\n\n",
                dim + 1);
    std::vector<std::string> headers{"level"};
    for (const auto& e : entries) headers.push_back(e.label);
    TablePrinter t(headers);
    for (uint32_t level = 0; level < 8; ++level) {
      std::vector<std::string> row{std::to_string(level)};
      for (const auto& e : entries) {
        row.push_back(
            std::to_string(e.metrics.misses_per_dim_level[dim][level]));
      }
      t.AddRow(std::move(row));
    }
    bench::Emit(t, "fig9_dim" + std::to_string(dim + 1));
  }

  std::printf("total misses: ");
  for (const auto& e : entries) {
    std::printf("%s=%llu  ", e.label.c_str(),
                static_cast<unsigned long long>(e.metrics.deadline_misses));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::Run();
  return 0;
}
