// Figure 5: priority inversion (as % of FIFO) vs. blocking-window size for
// the seven SFC1 curves, under normal and high load.
//
// Setup (Section 5.1): relaxed deadlines and transfer-dominated service so
// SFC2/SFC3 drop out; three priority dimensions with 16 levels; requests
// arrive exponentially (normal load: 25 ms mean interarrival; high load:
// 12 ms). The window sweeps 0%..100% of the characterization space.

#include <cstdio>

#include "bench_util.h"
#include "sched/fcfs.h"

namespace csfc {
namespace {

void RunLoad(const char* label, double interarrival_ms, uint64_t count) {
  WorkloadConfig wc;
  wc.seed = 42;
  wc.count = count;
  wc.mean_interarrival_ms = interarrival_ms;
  wc.priority_dims = 3;
  wc.priority_levels = 16;
  wc.relaxed_deadlines = true;
  const TracePtr trace = ShareTrace(bench::MustGenerate(wc));

  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  sc.metrics.dims = 3;
  sc.metrics.levels = 16;

  // Point 0 is the FIFO baseline; then one point per (window, curve).
  std::vector<RunPoint> points;
  points.push_back(
      {sc, trace, [] { return std::make_unique<FcfsScheduler>(); }});
  for (int wpct = 0; wpct <= 100; wpct += 10) {
    for (const auto& curve : bench::Curves()) {
      points.push_back({sc, trace,
                        bench::CascadedFactory(
                            PresetStage1Only(curve, 3, 4, wpct / 100.0))});
    }
  }
  const std::vector<RunMetrics> results = bench::MustRunAll(points);
  const double base = static_cast<double>(results[0].total_inversions());

  std::printf("== Figure 5 (%s load, interarrival %.0f ms): "
              "priority inversion as %% of FIFO ==\n\n",
              label, interarrival_ms);
  std::vector<std::string> headers{"window%"};
  for (const auto& c : bench::Curves()) headers.push_back(c);
  TablePrinter t(headers);
  size_t next = 1;
  for (int wpct = 0; wpct <= 100; wpct += 10) {
    std::vector<std::string> row{std::to_string(wpct)};
    for (size_t c = 0; c < bench::Curves().size(); ++c) {
      const RunMetrics& m = results[next++];
      row.push_back(FormatDouble(
          Percent(static_cast<double>(m.total_inversions()), base), 1));
    }
    t.AddRow(std::move(row));
  }
  bench::Emit(t, std::string("fig5_") + label);
}

}  // namespace
}  // namespace csfc

int main() {
  csfc::RunLoad("normal", 25.0, 3000);
  csfc::RunLoad("high", 12.0, 3000);
  return 0;
}
